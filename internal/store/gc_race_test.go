package store

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/bufpool"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
)

// selfVerifying returns a payload whose content is a pure function of the
// 16-byte (id, version) header it starts with, so any reader can check the
// bytes it got without coordinating with the writer that produced them.
func selfVerifying(id uint64, version uint32, n int) []byte {
	out := make([]byte, n)
	binary.BigEndian.PutUint64(out[0:8], id)
	binary.BigEndian.PutUint32(out[8:12], version)
	rng := rand.New(rand.NewSource(int64(id)*1_000_003 + int64(version)))
	rng.Read(out[12:])
	return out
}

// checkSelfVerifying confirms a read-back payload equals the generator's
// output for the header it carries.
func checkSelfVerifying(t *testing.T, got []byte) {
	t.Helper()
	if len(got) < 12 {
		t.Errorf("payload only %d bytes", len(got))
		return
	}
	id := binary.BigEndian.Uint64(got[0:8])
	version := binary.BigEndian.Uint32(got[8:12])
	want := selfVerifying(id, version, len(got))
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("object %#x v%d: byte %d = %#x, want %#x", id, version, i, got[i], want[i])
			return
		}
	}
}

// TestGCConcurrentWithTraffic hammers a log-structured store with
// concurrent reads, dirty overwrites, deletes, scrub-repair passes, and an
// injected fail-stop — all while segment GC (background episodes plus the
// inline path) relocates live chunks underneath. Every successful read is
// byte-verified against the self-describing payload, no acknowledged dirty
// write may be lost (dirty data is fully replicated under Reo), and the
// bufpool lease books must balance once the dust settles. Run with -race.
func TestGCConcurrentWithTraffic(t *testing.T) {
	base := bufpool.Outstanding()
	s, err := New(Config{
		Devices:          5,
		DeviceSpec:       testSpec(256 << 10),
		ChunkSize:        1024,
		Policy:           policy.Reo{ParityBudget: 0.20},
		RedundancyBudget: 0.20,
		Layout:           flash.LayoutLog,
		LogConfig:        flash.LogConfig{SegmentBytes: 8 << 10, GCTrigger: 0.05},
		BackgroundGC:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const objects = 24
	versions := make([]atomic.Uint32, objects)
	for i := 0; i < objects; i++ {
		size := 600 + (i%5)*700
		if _, err := s.PutCtx(nil, oid(uint64(i)), selfVerifying(uint64(i), 0, size), osd.ClassDirty, true); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		ops      atomic.Int64
		gcBefore int64
	)
	expected := func(err error) bool {
		// A fail-stop mid-run legitimately surfaces these on the losing
		// side of a race with recovery/reencode; anything else is a bug.
		return errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupted) ||
			errors.Is(err, ErrCacheFull) || errors.Is(err, ErrRedundancyFull)
	}

	// Dirty writers: overwrite (tombstoning the old copy in the log).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for !stop.Load() {
				i := rng.Intn(objects)
				v := versions[i].Add(1)
				size := 600 + (i%5)*700
				_, err := s.PutCtx(nil, oid(uint64(i)), selfVerifying(uint64(i), v, size), osd.ClassDirty, true)
				if err != nil && !expected(err) {
					t.Errorf("put object %d: %v", i, err)
					return
				}
				ops.Add(1)
			}
		}(w)
	}

	// Readers: byte-verify everything that comes back.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 200))
			for !stop.Load() {
				i := rng.Intn(objects)
				buf, _, _, err := s.GetCtx(nil, oid(uint64(i)))
				if err != nil {
					if !expected(err) {
						t.Errorf("get object %d: %v", i, err)
						return
					}
					continue
				}
				checkSelfVerifying(t, buf.Bytes())
				buf.Release()
				ops.Add(1)
			}
		}(r)
	}

	// Churn: put-and-delete short-lived cold objects (garbage feed for GC).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		n := uint64(1000)
		for !stop.Load() {
			id := oid(n)
			n++
			data := selfVerifying(n, 0, 500+rng.Intn(1500))
			if _, err := s.PutCtx(nil, id, data, osd.ClassColdClean, false); err != nil {
				if !expected(err) {
					t.Errorf("churn put: %v", err)
					return
				}
				continue
			}
			if err := s.Delete(id); err != nil && !expected(err) {
				t.Errorf("churn delete: %v", err)
				return
			}
		}
	}()

	// Scrub-repair sweeps concurrent with relocation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := s.ScrubRepair(); err != nil {
				t.Errorf("scrub-repair: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Let traffic and GC interleave, then fail a device mid-flight —
	// ideally mid-relocation — and keep the pressure on.
	time.Sleep(80 * time.Millisecond)
	gcBefore = s.WriteAmp().GCBytesWritten
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)

	stop.Store(true)
	wg.Wait()
	s.WaitGC()

	if got := ops.Load(); got < 100 {
		t.Fatalf("only %d successful ops — not enough interleaving", got)
	}

	// Every dirty object must still be readable and correct: replication
	// tolerates the single fail-stop, and GC may not lose a live chunk.
	for i := 0; i < objects; i++ {
		buf, _, _, err := s.GetCtx(nil, oid(uint64(i)))
		if err != nil {
			t.Errorf("object %d unreadable after soak: %v", i, err)
			continue
		}
		checkSelfVerifying(t, buf.Bytes())
		buf.Release()
	}

	wa := s.WriteAmp()
	if wa.SegmentErases == 0 {
		t.Error("no segments erased — GC never ran during the soak")
	}
	t.Logf("soak: ops=%d erases=%d gcBytes=%d (pre-fail %d) garbage=%.1f%%",
		ops.Load(), wa.SegmentErases, wa.GCBytesWritten, gcBefore, wa.GarbageRatio()*100)

	if got := bufpool.Outstanding(); got != base {
		t.Errorf("bufpool leases unbalanced: %d outstanding, started at %d", got, base)
	}
}
