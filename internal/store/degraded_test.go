package store

import (
	"bytes"
	"errors"
	"testing"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/stripe"
)

// stripeLayout reproduces the manager's round-robin placement for a stripe
// written while all n devices were alive: parity occupies k slots starting
// at id % n, data fills the rest in order.
func stripeLayout(id stripe.ID, n, k int) (parity, data []int) {
	start := int(uint64(id) % uint64(n))
	for j := 0; j < k; j++ {
		parity = append(parity, (start+j)%n)
	}
	for i := 0; i < n-k; i++ {
		data = append(data, (start+k+i)%n)
	}
	return parity, data
}

// putHot stores a clean hot (parity-protected, class 2) object and returns
// its payload and first stripe plus that stripe's parity chunk count.
func putHot(t *testing.T, s *Store) (payload []byte, sid stripe.ID, k int) {
	t.Helper()
	payload = randBytes(11, 20_000)
	if _, err := s.Put(oid(1), payload, osd.ClassHotClean, false); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	sid = s.objects[oid(1)].stripes[0]
	s.mu.RUnlock()
	info, err := s.stripes.Describe(sid)
	if err != nil {
		t.Fatal(err)
	}
	if info.Scheme.Kind != policy.KindParity || info.Scheme.ParityChunks < 1 {
		t.Fatalf("hot object scheme = %v, want parity", info.Scheme)
	}
	return payload, sid, info.Scheme.ParityChunks
}

// flipChunk makes a read-detectable corruption (stale CRC) in stripe sid's
// chunk on device dev.
func flipChunk(t *testing.T, s *Store, sid stripe.ID, dev int) {
	t.Helper()
	d := s.Array().Device(dev)
	if !d.Has(flash.ChunkAddr(sid)) {
		t.Fatalf("device %d holds no chunk of stripe %d", dev, sid)
	}
	if !d.InjectCorruption(flash.ChunkAddr(sid), 1, false) {
		t.Fatal("corruption failed")
	}
}

func TestDegradedReadSurvivesDataChunkCorruption(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	payload, sid, k := putHot(t, s)
	_, dataDevs := stripeLayout(sid, 5, k)
	flipChunk(t, s, sid, dataDevs[0])

	got, _, _, err := s.Get(oid(1))
	if err != nil {
		t.Fatalf("Get over corrupt data chunk = %v, want reconstruction", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read returned wrong bytes")
	}
	// The CRC failure dropped the chunk and the read repaired it in place,
	// so the next read is clean.
	if !s.Array().Device(dataDevs[0]).Has(flash.ChunkAddr(sid)) {
		t.Fatal("read did not repair the dropped chunk in place")
	}
	got, _, degraded, err := s.Get(oid(1))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-repair read: err=%v", err)
	}
	if degraded {
		t.Fatal("read still degraded after in-place repair")
	}
}

func TestReadUnaffectedByParityChunkCorruption(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	payload, sid, k := putHot(t, s)
	parityDevs, _ := stripeLayout(sid, 5, k)
	flipChunk(t, s, sid, parityDevs[0])

	got, _, degraded, err := s.Get(oid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read returned wrong bytes")
	}
	if degraded {
		t.Fatal("parity corruption must not degrade the foreground read")
	}
}

func TestIrrecoverableStripeNeverReturnsWrongData(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	_, sid, k := putHot(t, s)
	// Corrupt k+1 chunks of one class-2 stripe: one more than its parity
	// tolerates, so reconstruction is impossible.
	parityDevs, dataDevs := stripeLayout(sid, 5, k)
	victims := append(append([]int(nil), dataDevs...), parityDevs...)[:k+1]
	for _, dev := range victims {
		flipChunk(t, s, sid, dev)
	}

	if _, _, _, err := s.Get(oid(1)); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Get = %v, want ErrCorrupted — never wrong data", err)
	}
	// The corpse was dropped so callers refetch from the backend instead of
	// retrying a dead object.
	if _, _, _, err := s.Get(oid(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound", err)
	}
}
