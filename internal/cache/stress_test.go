package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/policy"
)

// fillPattern builds version ver of object obj: a constant-byte payload, so
// any internally consistent read is all one byte and any torn read (a mix of
// two versions) is immediately visible. Distinct versions below 256 map to
// distinct bytes for a given object.
func fillPattern(obj int, ver uint32, n int) []byte {
	return bytes.Repeat([]byte{byte(obj*31) + byte(ver)*131}, n)
}

// TestConcurrentStress hammers one manager from many goroutines with mixed
// reads, full writes, and whole-object partial writes while a device fails
// mid-run, then checks the invariants the lock-narrowed paths must uphold:
// no torn reads, counters consistent with the operations issued, dirty bytes
// never negative and zero after FlushAll, and no lost updates — every object
// reads back at the last version written to it.
func TestConcurrentStress(t *testing.T) {
	const (
		workers      = 8
		opsPerWorker = 400
		objects      = 24
	)
	f := newFixture(t, policy.Uniform{ParityChunks: 1}, 0, 32<<10)

	sizes := make([]int, objects)
	objMu := make([]sync.Mutex, objects)
	version := make([]uint32, objects) // version[i] guarded by objMu[i]
	for i := 0; i < objects; i++ {
		sizes[i] = 1024 * (1 + i%5)
		if _, err := f.backend.Put(oid(uint64(i)), fillPattern(i, 0, sizes[i])); err != nil {
			t.Fatal(err)
		}
	}

	var readCalls, writeCalls, hitCount atomic.Int64
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for op := 0; op < opsPerWorker; op++ {
				obj := rng.Intn(objects)
				id := oid(uint64(obj))
				switch rng.Intn(4) {
				case 0, 1:
					readCalls.Add(1)
					res, err := f.cache.Read(id)
					if err != nil {
						errc <- fmt.Errorf("read %v: %w", id, err)
						return
					}
					if res.Hit {
						hitCount.Add(1)
					}
					if len(res.Data) != sizes[obj] {
						errc <- fmt.Errorf("read %v: got %d bytes, want %d", id, len(res.Data), sizes[obj])
						return
					}
					for _, b := range res.Data[1:] {
						if b != res.Data[0] {
							errc <- fmt.Errorf("torn read of %v", id)
							return
						}
					}
				case 2:
					// Full overwrite; the per-object mutex serialises
					// writers of the same object so the last version is
					// well defined.
					objMu[obj].Lock()
					version[obj]++
					data := fillPattern(obj, version[obj], sizes[obj])
					writeCalls.Add(1)
					_, err := f.cache.Write(id, data)
					objMu[obj].Unlock()
					if err != nil {
						errc <- fmt.Errorf("write %v: %w", id, err)
						return
					}
				case 3:
					// Whole-object WriteAt: exercises the in-place update
					// path with the same content invariant.
					objMu[obj].Lock()
					version[obj]++
					data := fillPattern(obj, version[obj], sizes[obj])
					writeCalls.Add(1)
					_, err := f.cache.WriteAt(id, 0, data)
					objMu[obj].Unlock()
					if err != nil {
						errc <- fmt.Errorf("writeAt %v: %w", id, err)
						return
					}
				}
				if db := f.cache.DirtyBytes(); db < 0 {
					errc <- fmt.Errorf("negative dirty bytes: %d", db)
					return
				}
			}
		}(w)
	}

	// Fail one device mid-run; uniform 1-parity tolerates a single loss, so
	// the cache keeps serving (degraded reads, repair-on-read, rebuilds).
	time.Sleep(2 * time.Millisecond)
	_ = f.store.FailDevice(3)

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := f.cache.Stats()
	if st.Reads != readCalls.Load() {
		t.Errorf("stats.Reads = %d, want %d", st.Reads, readCalls.Load())
	}
	if st.Writes != writeCalls.Load() {
		t.Errorf("stats.Writes = %d, want %d", st.Writes, writeCalls.Load())
	}
	if st.Hits != hitCount.Load() {
		t.Errorf("stats.Hits = %d, want %d (hits observed by clients)", st.Hits, hitCount.Load())
	}
	// Every Read resolves as a hit or a miss; WriteAt misses only add to
	// Misses, so the sum must cover all read lookups.
	if st.Hits+st.Misses < readCalls.Load() {
		t.Errorf("lookups leaked: hits %d + misses %d < reads %d",
			st.Hits, st.Misses, readCalls.Load())
	}

	f.cache.FlushAll()
	if db := f.cache.DirtyBytes(); db != 0 {
		t.Errorf("dirty bytes after FlushAll: %d", db)
	}

	// No lost updates: every object reads back at its final version,
	// whether it is still cached or must be refetched from the backend.
	for i := 0; i < objects; i++ {
		res, err := f.cache.Read(oid(uint64(i)))
		if err != nil {
			t.Fatalf("final read %d: %v", i, err)
		}
		want := fillPattern(i, version[i], sizes[i])
		if !bytes.Equal(res.Data, want) {
			t.Errorf("object %d: lost update (got version byte %#x, want %#x)",
				i, res.Data[0], want[0])
		}
	}
}
