package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCLIPolicy(t *testing.T) {
	addr := liveServer(t)
	runCmd := func(args ...string) (string, error) {
		var out bytes.Buffer
		err := run(append([]string{"-addr", addr}, args...), strings.NewReader(""), &out)
		return out.String(), err
	}

	out, err := runCmd("policy", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"read.hit", "read.degraded", "write.dirty", "wire.dial"} {
		if !strings.Contains(out, class) {
			t.Fatalf("policy list missing %q:\n%s", class, out)
		}
	}
	if !strings.Contains(out, "off") || !strings.Contains(out, "unlimited") {
		t.Fatalf("defaults should show hedging off and unlimited budget:\n%s", out)
	}

	// The README example: arm hedging on degraded reads at 200µs.
	out, err = runCmd("policy", "set", "read.degraded", "hedge.delay=200us", "hedge.max=2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuned policy.read.degraded.hedge.delay = 200us") {
		t.Fatalf("set output: %q", out)
	}
	out, err = runCmd("policy", "get", "read.degraded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hedge.delay    = 200µs") || !strings.Contains(out, "hedge.max      = 2") {
		t.Fatalf("get after set:\n%s", out)
	}
	// Plain-seconds form works too.
	if _, err := runCmd("policy", "set", "read.degraded", "retry.base=0.0001"); err != nil {
		t.Fatal(err)
	}
	out, _ = runCmd("policy", "get", "read.degraded")
	if !strings.Contains(out, "retry.base     = 100µs") {
		t.Fatalf("seconds form not applied:\n%s", out)
	}

	// Errors: bad class, bad knob, bad value, bad shape.
	if _, err := runCmd("policy", "get", "read.lukewarm"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := runCmd("policy", "set", "read.degraded", "bogus=1"); err == nil {
		t.Fatal("unknown knob accepted")
	}
	if _, err := runCmd("policy", "set", "read.degraded", "hedge.delay=soon"); err == nil {
		t.Fatal("unparseable value accepted")
	}
	if _, err := runCmd("policy", "set", "read.degraded", "hedge.delay"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := runCmd("policy", "frobnicate"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
