// Package backend implements the backend data store that Reo's cache fronts:
// the authoritative, durable copy of every object, held on a (simulated)
// 7,200 RPM hard drive. Cache misses fetch from here; write-back flushes
// land here. The store is deliberately slow relative to the flash array —
// that latency gap is what makes caching (and losing the cache) matter.
package backend

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/reo-cache/reo/internal/hdd"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/reqctx"
)

// ErrNotFound is returned when an object does not exist in the store.
var ErrNotFound = errors.New("backend: object not found")

// Store is an object store over a single disk's cost model. All methods are
// safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	spec    hdd.Spec
	objects map[osd.ObjectID][]byte
	stats   Stats
}

// Stats counts backend traffic. Every read here is a cache miss (or a
// consistency check), so these counters measure exactly the load the paper
// warns about when a cache device fails.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// New returns an empty store over the given disk spec.
func New(spec hdd.Spec) *Store {
	return &Store{
		spec:    spec,
		objects: make(map[osd.ObjectID][]byte),
	}
}

// Put stores a copy of data as the authoritative version of the object and
// returns the virtual-time cost of the disk write.
func (s *Store) Put(id osd.ObjectID, data []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, len(data))
	copy(buf, data)
	s.objects[id] = buf
	s.stats.Writes++
	s.stats.BytesWritten += int64(len(data))
	return s.spec.AccessCost(int64(len(data))), nil
}

// PutCtx is Put with a cancellation checkpoint before the disk is touched
// and per-request attribution. Simulated disk IO is interruptible at whole-
// object (virtual-clock advance) granularity — once the write starts it
// completes.
func (s *Store) PutCtx(rc *reqctx.Ctx, id osd.ObjectID, data []byte) (time.Duration, error) {
	if err := rc.Err(); err != nil {
		return 0, err
	}
	cost, err := s.Put(id, data)
	if err == nil {
		rc.CountBackendWrite()
	}
	return cost, err
}

// GetCtx is Get with a cancellation checkpoint and per-request attribution.
func (s *Store) GetCtx(rc *reqctx.Ctx, id osd.ObjectID) ([]byte, time.Duration, error) {
	if err := rc.Err(); err != nil {
		return nil, 0, err
	}
	data, cost, err := s.Get(id)
	if err == nil {
		rc.CountBackendRead()
	}
	return data, cost, err
}

// Get returns a copy of the object and the virtual-time cost of the disk
// read.
func (s *Store) Get(id osd.ObjectID) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	out := make([]byte, len(data))
	copy(out, data)
	s.stats.Reads++
	s.stats.BytesRead += int64(len(data))
	return out, s.spec.AccessCost(int64(len(data))), nil
}

// Has reports whether the object exists, without cost.
func (s *Store) Has(id osd.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}

// Size returns the object's size, or ErrNotFound.
func (s *Store) Size(id osd.ObjectID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return int64(len(data)), nil
}

// Delete removes the object. Deleting a missing object is a no-op.
func (s *Store) Delete(id osd.ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, id)
}

// ObjectCount returns the number of stored objects.
func (s *Store) ObjectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// TotalBytes returns the total stored payload size.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, data := range s.objects {
		total += int64(len(data))
	}
	return total
}

// Stats returns a copy of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
