// Package harness assembles complete Reo systems (flash array → store →
// cache manager → backend) and replays synthesised traces against them under
// failure schedules, producing the rows of every table and figure in the
// paper's evaluation (§VI). See experiments.go for the per-figure drivers.
package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/reo-cache/reo/internal/backend"
	"github.com/reo-cache/reo/internal/cache"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/hdd"
	"github.com/reo-cache/reo/internal/metrics"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/simclock"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/workload"
)

// SystemConfig describes one cache-server configuration under test.
type SystemConfig struct {
	// Policy is the redundancy policy (Reo-X%, k-parity, replication).
	Policy policy.Policy
	// Devices is the flash array width (paper: 5).
	Devices int
	// CacheBytes is the total raw flash capacity — the experiments set
	// this to a percentage of the data set size.
	CacheBytes int64
	// ChunkSize is the stripe chunk size.
	ChunkSize int
	// RecoveryOrder defaults to class order.
	RecoveryOrder store.RecoveryOrder
	// HotnessMetric defaults to Freq/Size.
	HotnessMetric cache.HotnessMetric
	// MetadataObjectSize overrides the materialised metadata object size
	// (scaled experiments shrink it with the rest of the data).
	MetadataObjectSize int
	// DisableParityRotation pins parity placement (wear ablation).
	DisableParityRotation bool
	// AsyncReclass switches the cache manager to the asynchronous
	// reclassification pipeline. Off by default: the simulator's golden
	// outputs depend on the deterministic synchronous refresh whose cost
	// is charged to virtual time.
	AsyncReclass bool
	// ReclassWorkers bounds the async reclassifier pool (0 = default).
	ReclassWorkers int
	// OpStats, when set, receives the cache's refresh instrumentation
	// ("refresh.pause", "reclass.bg") alongside the per-request latencies
	// RunConfig.OpStats records.
	OpStats *metrics.OpHistogram
	// AutoRecover lets the store start differentiated recovery on its own
	// whenever it observes new device failures (health-monitor
	// declarations included) — no InsertSpare/StartRecovery call needed.
	AutoRecover bool
	// Layout selects the flash write path: in-place (the default, the
	// seed behaviour) or log-structured append-only segments.
	Layout flash.Layout
	// SegmentBytes sets the log-structured segment size (0 = default).
	SegmentBytes int64
	// BackgroundGC enables the background segment-collection episodes
	// (log layout only; inline GC always runs regardless).
	BackgroundGC bool
	// Admission selects the clean-miss admission gate (default AdmitAll).
	Admission cache.AdmissionMode
	// AdmitMinHits and GhostCapacity tune the ghost filter (0 = defaults).
	AdmitMinHits  int
	GhostCapacity int
}

// System is a fully wired cache server plus its backend and virtual clock.
type System struct {
	Clock   *simclock.Clock
	Store   *store.Store
	Backend *backend.Store
	Cache   *cache.Manager
}

// BuildSystem constructs a system and preloads the backend with the trace's
// object population (preload cost is not charged: the backend is the
// pre-existing data store).
func BuildSystem(cfg SystemConfig, tr *workload.Trace) (*System, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 5
	}
	if cfg.CacheBytes <= 0 {
		return nil, errors.New("harness: cache size required")
	}
	if cfg.ChunkSize <= 0 {
		return nil, errors.New("harness: chunk size required")
	}
	budget := 0.0
	if reo, ok := cfg.Policy.(policy.Reo); ok {
		budget = reo.ParityBudget
	}
	st, err := store.New(store.Config{
		Devices:               cfg.Devices,
		DeviceSpec:            flash.Intel540s((cfg.CacheBytes + int64(cfg.Devices) - 1) / int64(cfg.Devices)),
		ChunkSize:             cfg.ChunkSize,
		Policy:                cfg.Policy,
		RedundancyBudget:      budget,
		RecoveryOrder:         cfg.RecoveryOrder,
		MetadataObjectSize:    cfg.MetadataObjectSize,
		DisableParityRotation: cfg.DisableParityRotation,
		AutoRecover:           cfg.AutoRecover,
		Layout:                cfg.Layout,
		LogConfig:             flash.LogConfig{SegmentBytes: cfg.SegmentBytes},
		BackgroundGC:          cfg.BackgroundGC,
	})
	if err != nil {
		return nil, err
	}
	be := backend.New(hdd.WD1TB(4 * tr.DatasetBytes))
	for obj := range tr.Sizes {
		if _, err := be.Put(objectID(obj), Payload(tr, obj, 0)); err != nil {
			return nil, err
		}
	}
	cm, err := cache.New(cache.Config{
		Store:            st,
		Backend:          be,
		NetworkBandwidth: 1.25e9, // 10GbE
		NetworkRTT:       100 * time.Microsecond,
		RefreshInterval:  500,
		HotnessMetric:    cfg.HotnessMetric,
		AsyncRefresh:     cfg.AsyncReclass,
		ReclassWorkers:   cfg.ReclassWorkers,
		OpStats:          cfg.OpStats,
		Admission:        cfg.Admission,
		AdmitMinHits:     cfg.AdmitMinHits,
		GhostCapacity:    cfg.GhostCapacity,
	})
	if err != nil {
		return nil, err
	}
	return &System{
		Clock:   simclock.New(),
		Store:   st,
		Backend: be,
		Cache:   cm,
	}, nil
}

// serveWithLifecycle issues one request under a per-request context built
// from the schedule's Timeout/CancelRate knobs: a pooled reqctx carrying a
// real-time deadline, pre-cancelled for the deterministic CancelRate share of
// requests.
func serveWithLifecycle(sys *System, cfg RunConfig, cancelRng *rand.Rand, write bool,
	id osd.ObjectID, tr *workload.Trace, obj, version int) (cache.Result, error) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if cancelRng != nil && cancelRng.Float64() < cfg.CancelRate {
		cancel() // the client abandoned this request before service
	}
	rc := reqctx.Acquire(ctx)
	defer reqctx.Release(rc)
	if write {
		return sys.Cache.WriteCtx(rc, id, Payload(tr, obj, version))
	}
	return sys.Cache.ReadCtx(rc, id)
}

// objectID maps a trace object index to its OSD identity.
func objectID(obj int) osd.ObjectID {
	return osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID + uint64(obj)}
}

// Payload deterministically generates object content for (object, version).
// The same pair always yields the same bytes, so data integrity can be
// checked end to end without storing golden copies.
func Payload(tr *workload.Trace, obj, version int) []byte {
	size := tr.Sizes[obj]
	rng := rand.New(rand.NewSource(tr.Config.Seed*1_000_003 + int64(obj)*31 + int64(version)))
	out := make([]byte, size)
	rng.Read(out)
	return out
}

// RunConfig schedules a trace replay.
type RunConfig struct {
	// Warmup replays the whole trace once, unmeasured, before the
	// measured run (the paper "first fully warms up the cache" for the
	// failure experiments).
	Warmup bool
	// FailAt maps request index → device slot to fail just before that
	// request is served.
	FailAt map[int]int
	// SpareAt maps request index → device slot that receives a blank
	// spare (starting differentiated recovery).
	SpareAt map[int]int
	// RecoveryObjectsPerRequest is how many queued objects background
	// recovery rebuilds between consecutive requests (on-demand access
	// keeps priority; recovery only runs in the gaps). Zero disables
	// interleaved recovery.
	RecoveryObjectsPerRequest int
	// PhaseAt lists request indices that start a new measurement phase
	// (a failure injection implicitly starts one too).
	PhaseAt []int
	// OnSpare, when set, is invoked immediately after each spare
	// insertion (instrumentation hook, e.g. to snapshot the rebuild
	// queue).
	OnSpare func()
	// VerifyPayloads checks returned bytes against the deterministic
	// generator (slower; used in tests). Only meaningful for runs where
	// no acknowledged update can be lost — i.e. failure-free runs or
	// policies that protect dirty data; a baseline that loses dirty data
	// under failures will legitimately serve stale versions.
	VerifyPayloads bool
	// OpStats, when set, receives every measured request's latency keyed
	// by operation ("read.hit", "read.miss", "write") for per-path tail
	// analysis. The histogram may be shared across concurrent runs.
	OpStats *metrics.OpHistogram
	// Timeout, when positive, attaches a real-time deadline to every
	// request. Requests that miss it are counted (RunResult, OpStats) and
	// skipped, not fatal.
	Timeout time.Duration
	// CancelRate, when positive, issues that fraction of requests with an
	// already-cancelled context — the client abandoned the request before
	// service. Selection is deterministic per trace seed. When both Timeout
	// and CancelRate are zero, the replay uses the legacy non-context calls
	// and is byte-identical to the pre-lifecycle harness.
	CancelRate float64
	// OnRequest, when set, runs before each measured request with its
	// index; the returned cost is charged to the virtual clock. Chaos runs
	// use it for periodic scrub-repair passes.
	OnRequest func(i int) (time.Duration, error)
}

// Phase is one measured segment of a run.
type Phase struct {
	// Label names the phase ("0 failures", "1 failure", ...).
	Label string
	// FailedDevices at the time the phase started.
	FailedDevices int
	// Reads covers read requests only (the paper's hit ratio).
	Reads metrics.Stats
	// All covers reads and writes (bandwidth and latency).
	All metrics.Stats
}

// RunResult aggregates a replay.
type RunResult struct {
	Policy string
	Phases []Phase
	// Total covers the whole measured run.
	TotalReads metrics.Stats
	TotalAll   metrics.Stats
	// SpaceEfficiency is sampled at the end of the run.
	SpaceEfficiency float64
	// RecoveryCompleted counts objects rebuilt by interleaved recovery.
	RecoveryCompleted int
	// RecoveryDoneRequest is the request index at which background
	// recovery drained its queue, or -1 if recovery never ran/finished.
	RecoveryDoneRequest int
	// CancelledOps and DeadlineOps count requests aborted by the request
	// lifecycle (RunConfig.CancelRate / RunConfig.Timeout).
	CancelledOps int64
	DeadlineOps  int64
	// Elapsed is the measured run's virtual duration.
	Elapsed time.Duration
}

// Run replays the trace against the system under the given schedule.
func Run(sys *System, tr *workload.Trace, cfg RunConfig) (*RunResult, error) {
	if cfg.Warmup {
		if err := replay(sys, tr, RunConfig{}, nil); err != nil {
			return nil, err
		}
	}
	res := &RunResult{Policy: sys.Store.Policy().Name(), RecoveryDoneRequest: -1}
	if err := replay(sys, tr, cfg, res); err != nil {
		return nil, err
	}
	res.SpaceEfficiency = sys.Store.SpaceEfficiency()
	return res, nil
}

// replay executes one pass. When res is nil the pass is unmeasured warmup
// (failure schedules are ignored during warmup).
func replay(sys *System, tr *workload.Trace, cfg RunConfig, res *RunResult) error {
	measured := res != nil
	lifecycle := cfg.Timeout > 0 || cfg.CancelRate > 0
	var cancelRng *rand.Rand
	if cfg.CancelRate > 0 {
		// A dedicated stream keeps cancellation selection independent of
		// trace synthesis: the same requests are cancelled for every policy
		// under the same seed.
		cancelRng = rand.New(rand.NewSource(tr.Config.Seed*2_654_435_761 + 0x5eed))
	}
	var (
		readCol, allCol      *metrics.Collector
		totalReads, totalAll *metrics.Collector
		phases               []Phase
		currentLabel         string
		phaseStarts          map[int]string
		measuredStart        time.Duration
	)
	if measured {
		phaseStarts = make(map[int]string, len(cfg.PhaseAt)+len(cfg.FailAt))
		for _, idx := range cfg.PhaseAt {
			phaseStarts[idx] = fmt.Sprintf("phase@%d", idx)
		}
		for idx := range cfg.FailAt {
			phaseStarts[idx] = "" // label assigned when the failure lands
		}
		now := sys.Clock.Now()
		measuredStart = now
		readCol = metrics.NewCollector(now)
		allCol = metrics.NewCollector(now)
		totalReads = metrics.NewCollector(now)
		totalAll = metrics.NewCollector(now)
		currentLabel = "0 failures"
	}

	closePhase := func() {
		if !measured || readCol == nil {
			return
		}
		now := sys.Clock.Now()
		phases = append(phases, Phase{
			Label:         currentLabel,
			FailedDevices: sys.Store.Array().N() - sys.Store.Array().AliveCount(),
			Reads:         readCol.Snapshot(now),
			All:           allCol.Snapshot(now),
		})
	}

	for i, req := range tr.Requests {
		if measured {
			if dev, ok := cfg.FailAt[i]; ok {
				closePhase()
				if err := sys.Store.FailDevice(dev); err != nil {
					return fmt.Errorf("fail device %d at request %d: %w", dev, i, err)
				}
				failures := sys.Store.Array().N() - sys.Store.Array().AliveCount()
				currentLabel = fmt.Sprintf("%d failure(s)", failures)
				now := sys.Clock.Now()
				readCol.Reset(now)
				allCol.Reset(now)
			} else if label, ok := phaseStarts[i]; ok && label != "" {
				closePhase()
				currentLabel = label
				now := sys.Clock.Now()
				readCol.Reset(now)
				allCol.Reset(now)
			}
			if slot, ok := cfg.SpareAt[i]; ok {
				if _, err := sys.Store.InsertSpare(slot); err != nil {
					return fmt.Errorf("insert spare %d at request %d: %w", slot, i, err)
				}
				if cfg.OnSpare != nil {
					cfg.OnSpare()
				}
			}
			if cfg.OnRequest != nil {
				c, err := cfg.OnRequest(i)
				if err != nil {
					return fmt.Errorf("on-request hook at request %d: %w", i, err)
				}
				sys.Clock.Advance(c)
			}
		}

		id := objectID(req.Object)
		var (
			result cache.Result
			err    error
		)
		if lifecycle {
			result, err = serveWithLifecycle(sys, cfg, cancelRng, req.Write, id, tr, req.Object, req.Version)
		} else if req.Write {
			result, err = sys.Cache.Write(id, Payload(tr, req.Object, req.Version))
		} else {
			result, err = sys.Cache.Read(id)
		}
		if err == nil && !req.Write && cfg.VerifyPayloads {
			want := Payload(tr, req.Object, req.Version)
			if !bytes.Equal(result.Data, want) {
				return fmt.Errorf("request %d: object %d version %d content mismatch",
					i, req.Object, req.Version)
			}
		}
		if err != nil {
			if lifecycle && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				// An abandoned or expired request is an outcome, not a run
				// failure: tally it and move on to the next request.
				if res != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						res.DeadlineOps++
					} else {
						res.CancelledOps++
					}
				}
				if measured && cfg.OpStats != nil {
					op := "write"
					if !req.Write {
						op = "read"
					}
					cfg.OpStats.RecordOutcome(op, err)
				}
				continue
			}
			return fmt.Errorf("request %d (object %d): %w", i, req.Object, err)
		}
		sys.Clock.Advance(result.Latency + result.Background)
		// Payload verification is done; return the hit path's pooled buffer
		// so the replay's steady state stays allocation-free. The metric
		// recording below only reads scalar fields.
		result.Release()

		if measured {
			if !req.Write {
				readCol.Record(result.Hit, result.Degraded, result.Bytes, result.Latency)
				totalReads.Record(result.Hit, result.Degraded, result.Bytes, result.Latency)
			}
			allCol.Record(result.Hit, result.Degraded, result.Bytes, result.Latency)
			totalAll.Record(result.Hit, result.Degraded, result.Bytes, result.Latency)
			if cfg.OpStats != nil {
				op := "write"
				if !req.Write {
					op = "read.miss"
					if result.Hit {
						op = "read.hit"
					}
				}
				cfg.OpStats.Record(op, result.Latency)
			}

			if cfg.RecoveryObjectsPerRequest > 0 && sys.Store.RecoveryActive() {
				cost, rebuilt, done, err := sys.Store.RecoverStep(cfg.RecoveryObjectsPerRequest)
				if err != nil {
					return fmt.Errorf("recovery step at request %d: %w", i, err)
				}
				sys.Clock.Advance(cost)
				res.RecoveryCompleted += rebuilt
				if done && res.RecoveryDoneRequest < 0 {
					res.RecoveryDoneRequest = i
				}
			}
		}
	}

	if measured {
		closePhase()
		now := sys.Clock.Now()
		res.Phases = phases
		res.TotalReads = totalReads.Snapshot(now)
		res.TotalAll = totalAll.Snapshot(now)
		res.Elapsed = now - measuredStart
		if cfg.OpStats != nil {
			// An async refresh may still be applying class changes; settle
			// it so the gauges below reflect the quiesced cache.
			sys.Cache.WaitRefresh()
			sys.Store.WaitGC()
			cs := sys.Cache.Stats()
			cfg.OpStats.SetGauge("cache.hhot", cs.Hhot)
			cfg.OpStats.SetGauge("cache.reclass_pending", float64(cs.ReclassPending))
			cfg.OpStats.SetGauge("cache.refresh_pauses", float64(cs.RefreshPauses))
			cfg.OpStats.SetGauge("cache.admission_bypasses", float64(cs.AdmissionBypasses))
			wa := sys.Store.WriteAmp()
			cfg.OpStats.SetGauge("wa.flash_bytes", float64(wa.FlashBytesWritten))
			cfg.OpStats.SetGauge("wa.gc_bytes", float64(wa.GCBytesWritten))
			cfg.OpStats.SetGauge("wa.tombstoned_bytes", float64(wa.TombstonedBytes))
			cfg.OpStats.SetGauge("wa.garbage_ratio", wa.GarbageRatio())
			cfg.OpStats.SetGauge("wa.segment_erases", float64(wa.SegmentErases))
			cfg.OpStats.SetGauge("wa.wear_cycles", wa.WearCycles)
			cfg.OpStats.SetGauge("wa.device", wa.DeviceWriteAmp())
			if cs.OfferedBytes > 0 {
				// System-level WA: flash bytes programmed per user byte offered.
				cfg.OpStats.SetGauge("wa.system",
					float64(wa.FlashBytesWritten)/float64(cs.OfferedBytes))
			}
		}
	}
	return nil
}
