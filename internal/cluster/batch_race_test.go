package cluster

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/bufpool"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/target"
)

// TestBatchReplayDuringMembershipChange is the batched twin of
// TestConcurrentReplayDuringMembershipChange: workers drive the cluster
// through PutBatchCtx/GetBatchCtx while a shard joins and a founding shard
// retires. The multi-stripe route locks the batch path takes must coexist
// with the rebalancer's per-stripe locking; every read is byte-verified, no
// acknowledged write may be lost, and the bufpool books must balance. Run
// under -race in CI.
func TestBatchReplayDuringMembershipChange(t *testing.T) {
	const (
		workers         = 8
		objects         = 400
		roundsPerWorker = 4
		batchSize       = 8
	)

	leasesBefore := bufpool.Outstanding()
	ini, _ := newTestCluster(t, 4)

	lastAcked := make([]int, objects)
	var progress atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// This worker's objects, issued as fixed-size batches. Objects
			// are partitioned by worker, so per-object operations stay
			// serial and each read has one correct answer.
			var mine []int
			for i := w; i < objects; i += workers {
				mine = append(mine, i)
			}
			for round := 0; round < roundsPerWorker; round++ {
				version := round + 1
				for s := 0; s < len(mine); s += batchSize {
					e := s + batchSize
					if e > len(mine) {
						e = len(mine)
					}
					group := mine[s:e]
					puts := make([]target.BatchPut, len(group))
					for k, i := range group {
						class, dirty := osd.ClassColdClean, false
						if (i+round)%3 == 0 {
							class, dirty = osd.ClassDirty, true
						}
						puts[k] = target.BatchPut{
							ID: testID(i), Data: testPayload(i, version), Class: class, Dirty: dirty,
						}
					}
					for k, r := range ini.PutBatchCtx(nil, puts) {
						if r.Err != nil {
							t.Errorf("worker %d: batch put (%d v%d): %v", w, group[k], version, r.Err)
							return
						}
						lastAcked[group[k]] = version
						progress.Add(1)
					}
					ids := make([]osd.ObjectID, len(group))
					for k, i := range group {
						ids[k] = testID(i)
					}
					for k, r := range ini.GetBatchCtx(nil, ids) {
						if r.Err != nil {
							t.Errorf("worker %d: batch get (%d) after v%d ack: %v", w, group[k], version, r.Err)
							return
						}
						if !bytes.Equal(r.Buf.Bytes(), testPayload(group[k], version)) {
							t.Errorf("worker %d: batch get (%d) returned wrong bytes for v%d", w, group[k], version)
						}
						r.Release()
					}
				}
			}
		}(w)
	}

	// Membership churn concurrent with the batched replay: grow 4 -> 5,
	// then retire a founding shard.
	memberDone := make(chan struct{})
	go func() {
		defer close(memberDone)
		for progress.Load() < objects {
			time.Sleep(time.Millisecond)
		}
		if stats, err := ini.AddTarget("t4", newShardStore(t, policy.Reo{ParityBudget: 0.4})); err != nil {
			t.Errorf("AddTarget during batched replay: %v", err)
			return
		} else if stats.Skipped > 0 {
			t.Errorf("AddTarget skipped %d objects", stats.Skipped)
		}
		if stats, err := ini.RemoveTarget("t1"); err != nil {
			t.Errorf("RemoveTarget during batched replay: %v", err)
			return
		} else if stats.Skipped > 0 {
			t.Errorf("RemoveTarget skipped %d objects", stats.Skipped)
		}
	}()

	wg.Wait()
	<-memberDone
	if t.Failed() {
		return
	}

	// No lost writes, no stale routing: every object reads back its last
	// acknowledged version and routes off the retired shard.
	for i := 0; i < objects; i++ {
		id := testID(i)
		got := mustGet(t, ini, id)
		if !bytes.Equal(got, testPayload(i, lastAcked[i])) {
			t.Fatalf("object %d: lost write — final bytes are not v%d", i, lastAcked[i])
		}
		if owner := ini.OwnerOf(id); owner == "t1" {
			t.Fatalf("object %d still routed to retired shard", i)
		}
	}

	stats := ini.BatchCounters()
	if stats.Calls == 0 || stats.SubOps == 0 {
		t.Fatalf("batch counters empty after batched replay: %+v", stats)
	}
	if stats.PartialFailures != 0 {
		t.Errorf("batched replay recorded %d partial failures", stats.PartialFailures)
	}
	if leasesAfter := bufpool.Outstanding(); leasesAfter != leasesBefore {
		t.Errorf("bufpool leases %d at quiesce, %d at start — leaked %d",
			leasesAfter, leasesBefore, leasesAfter-leasesBefore)
	}
	migObjects, _ := ini.MigratedTotals()
	if migObjects == 0 {
		t.Errorf("membership change migrated nothing under the batched replay")
	}
}
