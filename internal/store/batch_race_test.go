package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/bufpool"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/target"
)

// TestBatchConcurrentWithGC soaks the vectored store paths against the same
// churn the single-op GC race test applies: batch dirty overwrites and batch
// byte-verified reads race segment GC relocation, class-change traffic, and
// scrub-repair sweeps on a log-structured array. Acknowledged dirty writes
// must never be lost, every successful read must return the exact bytes of
// some acknowledged version, and the bufpool lease books must balance. Run
// with -race.
func TestBatchConcurrentWithGC(t *testing.T) {
	base := bufpool.Outstanding()
	s, err := New(Config{
		Devices:          5,
		DeviceSpec:       testSpec(256 << 10),
		ChunkSize:        1024,
		Policy:           policy.Reo{ParityBudget: 0.20},
		RedundancyBudget: 0.20,
		Layout:           flash.LayoutLog,
		LogConfig:        flash.LogConfig{SegmentBytes: 8 << 10, GCTrigger: 0.05},
		BackgroundGC:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const objects = 24
	versions := make([]atomic.Uint32, objects)
	for i := 0; i < objects; i++ {
		size := 600 + (i%5)*700
		if _, err := s.PutCtx(nil, oid(uint64(i)), selfVerifying(uint64(i), 0, size), osd.ClassDirty, true); err != nil {
			t.Fatal(err)
		}
	}
	// A disjoint clean set for the reclassifier to shuttle between classes
	// while the batches run.
	const cleanBase = 500
	for i := 0; i < 8; i++ {
		if _, err := s.PutCtx(nil, oid(uint64(cleanBase+i)), selfVerifying(uint64(cleanBase+i), 0, 800), osd.ClassColdClean, false); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		ops  atomic.Int64
	)
	expected := func(err error) bool {
		return errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupted) ||
			errors.Is(err, ErrCacheFull) || errors.Is(err, ErrRedundancyFull)
	}

	// Batch dirty writers: 4-object vectored overwrites.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for !stop.Load() {
				ops4 := make([]target.BatchPut, 4)
				for k := range ops4 {
					i := rng.Intn(objects)
					v := versions[i].Add(1)
					size := 600 + (i%5)*700
					ops4[k] = target.BatchPut{
						ID: oid(uint64(i)), Data: selfVerifying(uint64(i), v, size),
						Class: osd.ClassDirty, Dirty: true,
					}
				}
				for k, r := range s.PutBatchCtx(nil, ops4) {
					if r.Err != nil && !expected(r.Err) {
						t.Errorf("batch put sub-op %d: %v", k, r.Err)
						return
					}
				}
				ops.Add(1)
			}
		}(w)
	}

	// Batch readers: 6-object vectored reads, byte-verified.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 200))
			for !stop.Load() {
				ids := make([]osd.ObjectID, 6)
				for k := range ids {
					ids[k] = oid(uint64(rng.Intn(objects)))
				}
				for k, res := range s.GetBatchCtx(nil, ids) {
					if res.Err != nil {
						if !expected(res.Err) {
							t.Errorf("batch get sub-op %d: %v", k, res.Err)
							return
						}
						continue
					}
					checkSelfVerifying(t, res.Buf.Bytes())
					res.Release()
				}
				ops.Add(1)
			}
		}(r)
	}

	// Reclassifier: shuttle the clean set hot<->cold, re-encoding stripes
	// underneath the batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		for !stop.Load() {
			i := cleanBase + rng.Intn(8)
			class := osd.ClassHotClean
			if rng.Intn(2) == 0 {
				class = osd.ClassColdClean
			}
			if _, err := s.ReclassifyCtx(nil, oid(uint64(i)), class); err != nil && !expected(err) {
				t.Errorf("reclassify %d: %v", i, err)
				return
			}
		}
	}()

	// Scrub-repair sweeps concurrent with relocation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := s.ScrubRepair(); err != nil {
				t.Errorf("scrub-repair: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	s.WaitGC()

	if got := ops.Load(); got < 50 {
		t.Fatalf("only %d successful batch rounds — not enough interleaving", got)
	}
	// No lost dirty writes: every object reads back at least the version
	// space it acknowledged (any acknowledged version's byte pattern).
	for i := 0; i < objects; i++ {
		buf, _, _, err := s.GetCtx(nil, oid(uint64(i)))
		if err != nil {
			t.Fatalf("final read of dirty object %d: %v", i, err)
		}
		checkSelfVerifying(t, buf.Bytes())
		buf.Release()
	}
	if after := bufpool.Outstanding(); after != base {
		t.Errorf("bufpool leases %d at quiesce, %d at start — leaked %d", after, base, after-base)
	}
}
