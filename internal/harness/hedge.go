package harness

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/reo-cache/reo/internal/faultinject"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/metrics"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/store"
)

// HedgeConfig is a deterministic fail-slow scenario for the hedged
// degraded-read path: a replicated store with one device serving every op at
// FailSlowFactor× nominal cost. Reads whose rotation-primary lands on the
// slow device pay the full slowdown unless hedging races a healthy replica
// after HedgeDelay — the driver measures the exact read-latency tail both
// ways, so the tentpole's "hedged p99 beats hedging-off p99" claim is a
// number, not an anecdote.
type HedgeConfig struct {
	// Seed drives payload synthesis and the measured read sequence.
	Seed int64
	// Devices is the array width (default 5, the paper's).
	Devices int
	// Objects and ObjectBytes size the population: uniform single-stripe
	// objects so every read is one chunk off one primary device.
	Objects     int
	ObjectBytes int
	// Reads is the measured read count (after the health-warming passes).
	Reads int
	// FailSlowDevice serves every op at FailSlowFactor× nominal virtual
	// cost from the first op onward.
	FailSlowDevice int
	FailSlowFactor float64
	// HedgeDelay arms hedged reads on read.degraded when positive;
	// zero runs the identical scenario with hedging off.
	HedgeDelay time.Duration
	// MaxHedges bounds in-flight hedges (default 4).
	MaxHedges int
	// OpStats, when set, receives the per-attempt resilience timeline
	// ("read.degraded.try1.ok") and the hedge lifecycle gauges.
	OpStats *metrics.OpHistogram
}

// DefaultHedge returns the acceptance-criteria scenario: 5 devices, 200
// uniform 64KiB objects, one device 4× slow from the first op, 4000 reads,
// 25µs hedge delay.
func DefaultHedge(seed int64) HedgeConfig {
	return HedgeConfig{
		Seed:           seed,
		Devices:        5,
		Objects:        200,
		ObjectBytes:    64 << 10,
		Reads:          4000,
		FailSlowDevice: 0,
		FailSlowFactor: 4,
		HedgeDelay:     25 * time.Microsecond,
		MaxHedges:      4,
	}
}

// HedgeResult is one scenario's measured outcome. Latencies are exact
// quantiles of the per-read virtual costs (sorted slice, nearest rank) —
// the log2 histogram is too coarse to resolve a 3× tail claim.
type HedgeResult struct {
	Reads          int
	P50, P99, Max  time.Duration
	Mean           time.Duration
	Hedge          policy.HedgeStats
	SlowSuspect    bool
	FailSlowOps    int64
	SuspectDevices int
}

// HedgeRun executes the scenario. Everything is deterministic: payloads,
// the read sequence, the injector's fail-slow schedule, and the hedge race
// itself (winner picked on virtual cost, not goroutine interleaving) are
// pure functions of the seed, so the same config always returns the same
// result byte for byte.
func HedgeRun(cfg HedgeConfig) (*HedgeResult, error) {
	if cfg.Devices <= 1 {
		cfg.Devices = 5
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 200
	}
	if cfg.ObjectBytes <= 0 {
		cfg.ObjectBytes = 64 << 10
	}
	if cfg.Reads <= 0 {
		cfg.Reads = 4000
	}
	if cfg.MaxHedges <= 0 {
		cfg.MaxHedges = 4
	}
	if cfg.FailSlowDevice < 0 || cfg.FailSlowDevice >= cfg.Devices {
		return nil, fmt.Errorf("harness: fail-slow device %d outside array of %d", cfg.FailSlowDevice, cfg.Devices)
	}
	if cfg.FailSlowFactor < 1 {
		return nil, fmt.Errorf("harness: fail-slow factor %v must be >= 1", cfg.FailSlowFactor)
	}

	// Full replication, one chunk per object: each read touches exactly one
	// rotation-selected primary device, so ~1/Devices of the reads form the
	// slow cohort the tail measures.
	st, err := store.New(store.Config{
		Devices:    cfg.Devices,
		DeviceSpec: flash.Intel540s(4 * int64(cfg.Objects) * int64(cfg.ObjectBytes)),
		ChunkSize:  cfg.ObjectBytes,
		Policy:     policy.FullReplication{},
	})
	if err != nil {
		return nil, err
	}

	payloads := make([][]byte, cfg.Objects)
	for obj := range payloads {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(obj)*31))
		payloads[obj] = make([]byte, cfg.ObjectBytes)
		rng.Read(payloads[obj])
	}
	for obj, data := range payloads {
		if _, err := st.Put(objectID(obj), data, osd.ClassColdClean, false); err != nil {
			return nil, fmt.Errorf("populate object %d: %w", obj, err)
		}
	}

	res := st.Resilience()
	if cfg.HedgeDelay > 0 {
		rule := policy.DefaultRule(policy.OpReadDegraded)
		rule.Hedge = policy.HedgeRule{Delay: cfg.HedgeDelay, MaxHedges: cfg.MaxHedges}
		res.SetRule(policy.OpReadDegraded, rule)
	}
	if cfg.OpStats != nil {
		h := cfg.OpStats
		res.SetObserver(func(a policy.Attempt) {
			h.Record(fmt.Sprintf("%s.try%d.%s", a.Class, a.Attempt+1, a.Outcome), a.Latency)
		})
		defer res.SetObserver(nil)
	}

	inj, err := faultinject.New(faultinject.Plan{
		Seed: cfg.Seed,
		FailSlow: map[int]faultinject.FailSlow{
			cfg.FailSlowDevice: {FromOp: 0, Factor: cfg.FailSlowFactor},
		},
	})
	if err != nil {
		return nil, err
	}
	inj.Attach(st.Array())
	defer faultinject.Detach(st.Array())

	read := func(obj int) (time.Duration, error) {
		rc := reqctx.Acquire(context.Background())
		defer reqctx.Release(rc)
		buf, cost, _, err := st.GetCtx(rc, objectID(obj))
		if err != nil {
			return 0, err
		}
		defer buf.Release()
		if !bytes.Equal(buf.Bytes(), payloads[obj]) {
			return 0, fmt.Errorf("object %d: content mismatch", obj)
		}
		return cost, nil
	}

	// Health-warming passes: the monitor trusts its slowdown EWMA only
	// after 16 samples per device, and each read samples one primary, so two
	// full sweeps (~2·Objects/Devices samples on the slow device) push it
	// firmly into suspect before measurement starts.
	for pass := 0; pass < 2; pass++ {
		for obj := range payloads {
			if _, err := read(obj); err != nil {
				return nil, fmt.Errorf("warm pass %d: %w", pass, err)
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed*2_654_435_761 + 0x4ed6e))
	lats := make([]time.Duration, 0, cfg.Reads)
	for i := 0; i < cfg.Reads; i++ {
		cost, err := read(rng.Intn(cfg.Objects))
		if err != nil {
			return nil, fmt.Errorf("measured read %d: %w", i, err)
		}
		lats = append(lats, cost)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	out := &HedgeResult{
		Reads:       len(lats),
		P50:         quantileExact(lats, 0.50),
		P99:         quantileExact(lats, 0.99),
		Max:         lats[len(lats)-1],
		Mean:        sum / time.Duration(len(lats)),
		Hedge:       res.HedgeStats(),
		SlowSuspect: st.Array().Device(cfg.FailSlowDevice).Suspect(),
		FailSlowOps: inj.Counters().FailSlow,
	}
	for i := 0; i < st.Array().N(); i++ {
		if st.Array().Device(i).Suspect() {
			out.SuspectDevices++
		}
	}
	if cfg.OpStats != nil {
		recordHedgeGauges(cfg.OpStats, out.Hedge)
		cfg.OpStats.SetGauge("hedge.p99_us", float64(out.P99.Microseconds()))
	}
	return out, nil
}

// quantileExact returns the nearest-rank quantile of an ascending slice.
func quantileExact(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// recordHedgeGauges exposes the hedge lifecycle counters (and win rate)
// through the -opstats report.
func recordHedgeGauges(h *metrics.OpHistogram, hs policy.HedgeStats) {
	h.SetGauge("hedge.fired", float64(hs.Fired))
	h.SetGauge("hedge.won", float64(hs.Won))
	h.SetGauge("hedge.cancelled", float64(hs.Cancelled))
	h.SetGauge("hedge.suppressed", float64(hs.Suppressed))
	if hs.Fired > 0 {
		h.SetGauge("hedge.win_rate", float64(hs.Won)/float64(hs.Fired))
	}
}
