// Command reoctl is the client CLI for a running reotarget: object IO,
// classification and query control messages, and the failure/recovery
// operations the paper's evaluation performs.
//
// Usage:
//
//	reoctl -addr 127.0.0.1:9700 put 0x10010 -class cold < file
//	reoctl -addr 127.0.0.1:9700 get 0x10010 > file
//	reoctl -addr 127.0.0.1:9700 classify 0x10010 hot
//	reoctl -addr 127.0.0.1:9700 query 0x10010
//	reoctl -addr 127.0.0.1:9700 status 0x10010
//	reoctl -addr 127.0.0.1:9700 stats
//	reoctl -addr 127.0.0.1:9700 segments
//	reoctl -addr 127.0.0.1:9700 tune gc.trigger 0.15
//	reoctl -addr 127.0.0.1:9700 policy list
//	reoctl -addr 127.0.0.1:9700 policy set read.degraded hedge.delay=200us hedge.max=2
//	reoctl -addr 127.0.0.1:9700 fail 0
//	reoctl -addr 127.0.0.1:9700 spare 0
//	reoctl -addr 127.0.0.1:9700 recover
//
// Cluster membership (consistent-hash sharding across reotargets):
//
//	reoctl cluster -addrs 127.0.0.1:9700,127.0.0.1:9701 status
//	reoctl cluster -addrs 127.0.0.1:9700,127.0.0.1:9701 owner 0x10010
//	reoctl cluster -addrs 127.0.0.1:9700,127.0.0.1:9701 add 127.0.0.1:9702
//	reoctl cluster -addrs 127.0.0.1:9700,127.0.0.1:9701,127.0.0.1:9702 remove 127.0.0.1:9701
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reoctl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("reoctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9700", "target address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("missing command (put|get|del|classify|query|status|stats|segments|tune|policy|fail|spare|recover|cluster)")
	}
	if rest[0] == "cluster" {
		return runCluster(rest[1:], stdout)
	}
	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	return dispatch(client, rest, stdin, stdout)
}

func dispatch(client *transport.Client, args []string, stdin io.Reader, stdout io.Writer) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "put":
		if len(rest) < 1 {
			return errors.New("put <oid> [-class hot|cold|dirty|metadata]")
		}
		id, err := parseOID(rest[0])
		if err != nil {
			return err
		}
		class := osd.ClassColdClean
		dirty := false
		if len(rest) >= 3 && rest[1] == "-class" {
			class, err = parseClass(rest[2])
			if err != nil {
				return err
			}
			dirty = class == osd.ClassDirty
		}
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		cost, err := client.Put(id, data, class, dirty)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "put %v: %d bytes, class %v, device time %v\n", id, len(data), class, cost)
		return nil
	case "get":
		id, err := oneOID(rest, "get")
		if err != nil {
			return err
		}
		data, cost, degraded, err := client.Get(id)
		if err != nil {
			return err
		}
		if _, err := stdout.Write(data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "get %v: %d bytes, degraded=%v, device time %v\n", id, len(data), degraded, cost)
		return nil
	case "patch":
		if len(rest) != 2 {
			return errors.New("patch <oid> <offset>  (data on stdin)")
		}
		id, err := parseOID(rest[0])
		if err != nil {
			return err
		}
		offset, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad offset %q", rest[1])
		}
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		cost, err := client.WriteRange(id, offset, data)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "patch %v: %d bytes at %d, device time %v\n", id, len(data), offset, cost)
		return nil
	case "del":
		id, err := oneOID(rest, "del")
		if err != nil {
			return err
		}
		if err := client.Delete(id); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "deleted %v\n", id)
		return nil
	case "classify":
		if len(rest) != 2 {
			return errors.New("classify <oid> <metadata|dirty|hot|cold>")
		}
		id, err := parseOID(rest[0])
		if err != nil {
			return err
		}
		class, err := parseClass(rest[1])
		if err != nil {
			return err
		}
		sense, err := client.Control(osd.SetIDCommand{Object: id, Class: class})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "classify %v -> %v: sense %#x (%v)\n", id, class, int(sense), sense)
		return nil
	case "query":
		id, err := oneOID(rest, "query")
		if err != nil {
			return err
		}
		sense, err := client.Control(osd.QueryCommand{Object: id, Op: osd.OpRead, Size: 1})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "query %v: sense %#x (%v)\n", id, int(sense), sense)
		return nil
	case "status":
		id, err := oneOID(rest, "status")
		if err != nil {
			return err
		}
		status, err := client.Status(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "status %v: %v\n", id, status)
		return nil
	case "stats":
		stats, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "objects:          %d\n", stats.Objects)
		fmt.Fprintf(stdout, "used:             %d / %d bytes\n", stats.UsedBytes, stats.RawCapacity)
		fmt.Fprintf(stdout, "space efficiency: %.1f%%\n", stats.SpaceEfficiency*100)
		fmt.Fprintf(stdout, "devices:          %d/%d alive\n", stats.AliveDevices, stats.TotalDevices)
		fmt.Fprintf(stdout, "recovery:         active=%v queue=%d\n", stats.RecoveryActive, stats.RecoveryQueue)
		return nil
	case "segments":
		stats, err := client.SegStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "dev  layout    state     segs  util    garbage  writtenMB  gcMB   erases  wear    WA\n")
		for i, ds := range stats {
			util := 0.0
			if ds.CapacityBytes > 0 {
				util = float64(ds.LiveBytes+ds.GarbageBytes) / float64(ds.CapacityBytes)
			}
			fmt.Fprintf(stdout, "%-4d %-9v %-9v %-5d %-7.1f%% %-7.1f%% %-10.2f %-6.2f %-7d %-7.4f %.3f\n",
				i, ds.Layout, ds.State, ds.Segments, util*100, ds.GarbageRatio()*100,
				float64(ds.BytesWritten)/(1<<20), float64(ds.GCBytesWritten)/(1<<20),
				ds.SegmentErases, ds.WearCycles, ds.WriteAmp())
		}
		return nil
	case "tune":
		if len(rest) != 2 {
			return errors.New("tune <gc.trigger|gc.target> <value>")
		}
		value, err := strconv.ParseFloat(rest[1], 64)
		if err != nil {
			return fmt.Errorf("bad tune value %q", rest[1])
		}
		if err := client.Tune(rest[0], value); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tuned %s = %g\n", rest[0], value)
		return nil
	case "policy":
		return runPolicy(client, rest, stdout)
	case "fail":
		idx, err := oneIndex(rest, "fail")
		if err != nil {
			return err
		}
		if err := client.FailDevice(idx); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "device %d failed (shootdown)\n", idx)
		return nil
	case "spare":
		idx, err := oneIndex(rest, "spare")
		if err != nil {
			return err
		}
		queued, err := client.InsertSpare(idx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "spare inserted in slot %d: %d objects queued for recovery\n", idx, queued)
		return nil
	case "recover":
		total := 0
		for {
			n, done, err := client.RecoverStep(32)
			if err != nil {
				return err
			}
			total += n
			if done {
				break
			}
		}
		fmt.Fprintf(stdout, "recovery complete: %d objects rebuilt\n", total)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func oneOID(rest []string, cmd string) (osd.ObjectID, error) {
	if len(rest) != 1 {
		return osd.ObjectID{}, fmt.Errorf("%s <oid>", cmd)
	}
	return parseOID(rest[0])
}

func oneIndex(rest []string, cmd string) (int, error) {
	if len(rest) != 1 {
		return 0, fmt.Errorf("%s <device-index>", cmd)
	}
	idx, err := strconv.Atoi(rest[0])
	if err != nil {
		return 0, fmt.Errorf("bad device index %q", rest[0])
	}
	return idx, nil
}

// parseOID accepts "0x10010", "pid:oid", or a decimal user-object number.
func parseOID(s string) (osd.ObjectID, error) {
	if pid, oid, ok := strings.Cut(s, ":"); ok {
		p, err := parseU64(pid)
		if err != nil {
			return osd.ObjectID{}, err
		}
		o, err := parseU64(oid)
		if err != nil {
			return osd.ObjectID{}, err
		}
		return osd.ObjectID{PID: p, OID: o}, nil
	}
	o, err := parseU64(s)
	if err != nil {
		return osd.ObjectID{}, err
	}
	return osd.ObjectID{PID: osd.FirstPID, OID: o}, nil
}

func parseU64(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseClass(s string) (osd.Class, error) {
	switch strings.ToLower(s) {
	case "metadata":
		return osd.ClassMetadata, nil
	case "dirty":
		return osd.ClassDirty, nil
	case "hot":
		return osd.ClassHotClean, nil
	case "cold":
		return osd.ClassColdClean, nil
	default:
		return 0, fmt.Errorf("unknown class %q", s)
	}
}
