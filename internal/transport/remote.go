package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reo-cache/reo/internal/bufpool"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/target"
)

// RemoteTarget adapts one or more Clients into the cache manager's Target
// interface, giving the full osd-initiator/osd-target split of the paper:
// the cache manager runs on one host and drives the flash-array target over
// the network.
//
// With a single client every operation multiplexes over that connection;
// with a pool, operations round-robin across connections, spreading load
// over independent sockets (and, on a real network, TCP windows).
//
// The policy and raw capacity are fetched once at construction (they are
// immutable for a target's lifetime). Device health is polled lazily: it is
// refreshed at most every statsRefreshOps operations, so failure detection
// lags by a bounded number of requests — the same observability the paper's
// initiator has through its query commands.
type RemoteTarget struct {
	next atomic.Uint64
	pol  policy.Policy

	// addr is the dial address when the pool was built by
	// DialRemoteTargetPool; it enables background redial of dead
	// connections. Pools over externally supplied clients ("" addr) only
	// steer away from dead connections.
	addr      string
	closed    chan struct{}
	closeOnce sync.Once

	deadSkips atomic.Int64
	redials   atomic.Int64

	// res, when set, is the resilience registry the redial loop consults
	// for the wire.dial class (backoff shape, attempt bound, retry
	// budget). Nil falls back to the built-in defaults, which reproduce
	// the historical redial constants exactly.
	res atomic.Pointer[policy.Resilience]

	mu          sync.Mutex
	clients     []*Client
	redialing   []bool
	rawCapacity int64
	alive       int
	devices     int
	opsSince    int
}

var _ target.Target = (*RemoteTarget)(nil)

// statsRefreshOps bounds how stale the cached device-health snapshot can
// get, in operations.
const statsRefreshOps = 32

// NewRemoteTarget performs the initial handshake (policy + stats) and
// returns the adapter over a single connection.
func NewRemoteTarget(client *Client) (*RemoteTarget, error) {
	return NewRemoteTargetPool([]*Client{client})
}

// NewRemoteTargetPool is NewRemoteTarget over a connection pool: requests
// round-robin across the clients. The handshake runs on the first client.
func NewRemoteTargetPool(clients []*Client) (*RemoteTarget, error) {
	if len(clients) == 0 {
		return nil, errors.New("transport: remote target needs at least one client")
	}
	pol, err := clients[0].Policy()
	if err != nil {
		return nil, fmt.Errorf("transport: fetch policy: %w", err)
	}
	rt := &RemoteTarget{
		clients:   clients,
		redialing: make([]bool, len(clients)),
		pol:       pol,
		closed:    make(chan struct{}),
	}
	if err := rt.refreshStats(); err != nil {
		return nil, fmt.Errorf("transport: fetch stats: %w", err)
	}
	return rt, nil
}

// DialRemoteTargetPool dials conns connections to addr and returns a pooled
// RemoteTarget over them. Close releases every connection.
func DialRemoteTargetPool(addr string, conns int) (*RemoteTarget, error) {
	if conns < 1 {
		conns = 1
	}
	clients := make([]*Client, 0, conns)
	for i := 0; i < conns; i++ {
		c, err := Dial(addr)
		if err != nil {
			for _, prev := range clients {
				_ = prev.Close()
			}
			return nil, err
		}
		clients = append(clients, c)
	}
	rt, err := NewRemoteTargetPool(clients)
	if err != nil {
		return nil, err
	}
	rt.addr = addr
	return rt, nil
}

// Historical redial constants, now the wire.dial defaults in
// internal/policy (kept as reference values; the redial loop reads the
// registry).
const (
	redialBaseDelay = 5 * time.Millisecond
	redialMaxDelay  = 1 * time.Second
)

// SetResilience points the redial loop at a resilience registry; nil keeps
// the built-in wire.dial defaults.
func (rt *RemoteTarget) SetResilience(r *policy.Resilience) { rt.res.Store(r) }

// client picks the connection for the next operation: round-robin over the
// pool, skipping connections whose reader has died (their calls would fail
// instantly with ErrConnectionLost). Dead slots kick off a background
// redial when the pool knows its dial address. Only when every connection
// is dead does client return one anyway, so the caller surfaces the
// terminal error instead of blocking.
func (rt *RemoteTarget) client() *Client {
	idx := rt.next.Add(1)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := uint64(len(rt.clients))
	for i := uint64(0); i < n; i++ {
		slot := int((idx + i) % n)
		c := rt.clients[slot]
		if c.Alive() {
			return c
		}
		rt.deadSkips.Add(1)
		rt.maybeRedialLocked(slot)
	}
	return rt.clients[idx%n]
}

// maybeRedialLocked starts at most one background redial per dead slot.
func (rt *RemoteTarget) maybeRedialLocked(slot int) {
	if rt.addr == "" || rt.redialing[slot] {
		return
	}
	select {
	case <-rt.closed:
		return
	default:
	}
	rt.redialing[slot] = true
	go rt.redial(slot)
}

// redial replaces a dead connection, backing off per the wire.dial retry
// rule (default: exponential from 5ms capped at 1s with ±25% deterministic
// jitter, unbounded attempts) until the dial succeeds, the rule's attempt
// bound or retry budget runs out, or the pool closes.
func (rt *RemoteTarget) redial(slot int) {
	res := rt.res.Load()
	retry := res.Rule(policy.OpWireDial).Retry
	for attempt := 0; ; attempt++ {
		// Deterministic jitter in [0.75, 1.25) of the nominal delay keeps
		// a burst of redialing slots from thundering in lockstep.
		h := (uint64(slot)<<32 + uint64(attempt) + 1) * 0x9E3779B97F4A7C15
		jittered := retry.BackoffDelay(attempt, h)
		select {
		case <-rt.closed:
			rt.mu.Lock()
			rt.redialing[slot] = false
			rt.mu.Unlock()
			return
		case <-time.After(jittered):
		}
		c, err := Dial(rt.addr)
		if err != nil {
			res.ObserveAttempt(policy.OpWireDial, attempt, policy.OutcomeTransient, 0)
			if retry.MaxAttempts > 0 && attempt+1 >= retry.MaxAttempts {
				rt.mu.Lock()
				rt.redialing[slot] = false
				rt.mu.Unlock()
				return
			}
			if !res.AllowRetry(policy.OpWireDial) {
				rt.mu.Lock()
				rt.redialing[slot] = false
				rt.mu.Unlock()
				return
			}
			continue
		}
		res.ObserveAttempt(policy.OpWireDial, attempt, policy.OutcomeOK, 0)
		rt.mu.Lock()
		select {
		case <-rt.closed:
			rt.redialing[slot] = false
			rt.mu.Unlock()
			_ = c.Close()
			return
		default:
		}
		old := rt.clients[slot]
		rt.clients[slot] = c
		rt.redialing[slot] = false
		rt.mu.Unlock()
		_ = old.Close()
		rt.redials.Add(1)
		return
	}
}

// DeadSkips reports how many times operation dispatch skipped a dead
// connection; Redials reports how many dead connections were replaced.
func (rt *RemoteTarget) DeadSkips() int64 { return rt.deadSkips.Load() }

// Redials reports how many dead pooled connections were re-established.
func (rt *RemoteTarget) Redials() int64 { return rt.redials.Load() }

// Close closes every pooled connection, failing their in-flight calls, and
// stops any background redialing.
func (rt *RemoteTarget) Close() error {
	rt.closeOnce.Do(func() { close(rt.closed) })
	rt.mu.Lock()
	clients := append([]*Client(nil), rt.clients...)
	rt.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (rt *RemoteTarget) refreshStats() error {
	stats, err := rt.client().Stats()
	if err != nil {
		return err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.rawCapacity = stats.RawCapacity
	rt.alive = int(stats.AliveDevices)
	rt.devices = int(stats.TotalDevices)
	rt.opsSince = 0
	return nil
}

// tick counts an operation and refreshes the health snapshot when due.
func (rt *RemoteTarget) tick() {
	rt.mu.Lock()
	rt.opsSince++
	due := rt.opsSince >= statsRefreshOps
	rt.mu.Unlock()
	if due {
		// Best effort; a failed refresh keeps the previous snapshot.
		_ = rt.refreshStats()
	}
}

// PutCtx implements target.Target, carrying the request's ID and deadline on
// the wire.
func (rt *RemoteTarget) PutCtx(rc *reqctx.Ctx, id osd.ObjectID, data []byte, class osd.Class, dirty bool) (time.Duration, error) {
	rt.tick()
	return rt.client().PutCtx(rc, id, data, class, dirty)
}

// GetCtx implements target.Target. The returned lease is the response frame
// itself, narrowed to the payload by the client's reader goroutine — no
// payload copy happens anywhere between the target's flash array and the
// caller, who releases the frame through the usual Result lease protocol.
func (rt *RemoteTarget) GetCtx(rc *reqctx.Ctx, id osd.ObjectID) (*bufpool.Buf, time.Duration, bool, error) {
	rt.tick()
	return rt.client().GetLeasedCtx(rc, id)
}

// GetBatchCtx implements target.BatchTarget: the whole batch rides one
// OpGetBatch frame on one pooled connection (one tick, one window slot).
func (rt *RemoteTarget) GetBatchCtx(rc *reqctx.Ctx, ids []osd.ObjectID) []target.BatchGetResult {
	rt.tick()
	return rt.client().GetBatchCtx(rc, ids)
}

// PutBatchCtx implements target.BatchTarget over one OpPutBatch frame.
func (rt *RemoteTarget) PutBatchCtx(rc *reqctx.Ctx, ops []target.BatchPut) []target.BatchPutResult {
	rt.tick()
	return rt.client().PutBatchCtx(rc, ops)
}

var _ target.BatchTarget = (*RemoteTarget)(nil)

// Delete implements target.Target.
func (rt *RemoteTarget) Delete(id osd.ObjectID) error {
	rt.tick()
	return rt.client().Delete(id)
}

// DeleteCtx implements target.Target: the wire already carried request ID
// and deadline for every other op, this pool-level wrapper gives deletes
// the same attribution.
func (rt *RemoteTarget) DeleteCtx(rc *reqctx.Ctx, id osd.ObjectID) error {
	rt.tick()
	return rt.client().DeleteCtx(rc, id)
}

// WriteRangeCtx implements target.Target.
func (rt *RemoteTarget) WriteRangeCtx(rc *reqctx.Ctx, id osd.ObjectID, offset int64, data []byte) (time.Duration, error) {
	rt.tick()
	return rt.client().WriteRangeCtx(rc, id, offset, data)
}

// MarkClean implements target.Target.
func (rt *RemoteTarget) MarkClean(id osd.ObjectID) error {
	rt.tick()
	return rt.client().MarkClean(id)
}

// MarkCleanCtx implements target.Target (request-attributed MarkClean).
func (rt *RemoteTarget) MarkCleanCtx(rc *reqctx.Ctx, id osd.ObjectID) error {
	rt.tick()
	return rt.client().MarkCleanCtx(rc, id)
}

// ReclassifyCtx implements target.Target.
func (rt *RemoteTarget) ReclassifyCtx(rc *reqctx.Ctx, id osd.ObjectID, class osd.Class) (time.Duration, error) {
	rt.tick()
	return rt.client().ReclassifyCtx(rc, id, class)
}

// Policy implements target.Target.
func (rt *RemoteTarget) Policy() policy.Policy { return rt.pol }

// RawCapacity implements target.Target.
func (rt *RemoteTarget) RawCapacity() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rawCapacity
}

// AliveDevices implements target.Target.
func (rt *RemoteTarget) AliveDevices() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.alive
}

// Devices implements target.Target.
func (rt *RemoteTarget) Devices() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.devices
}

// Refresh forces an immediate device-health refresh (e.g. after the
// operator injects a failure in a test).
func (rt *RemoteTarget) Refresh() error { return rt.refreshStats() }

// Status queries the remote object's availability classification (§IV.D).
func (rt *RemoteTarget) Status(id osd.ObjectID) (store.ObjectStatus, error) {
	rt.tick()
	return rt.client().Status(id)
}

// TargetStats fetches the target's live statistics snapshot — the shard
// view a cluster initiator aggregates.
func (rt *RemoteTarget) TargetStats() (StatsBody, error) {
	rt.tick()
	return rt.client().Stats()
}

// RecoverStep drives up to n objects of the remote target's rebuild queue,
// so cluster-wide recovery sweeps can fan out across shards.
func (rt *RemoteTarget) RecoverStep(n int) (rebuilt int, done bool, err error) {
	rt.tick()
	return rt.client().RecoverStep(n)
}

// ListObjects fetches the target's user-object inventory (identity, size,
// class, dirty flag) — what a cluster initiator needs to adopt a live,
// already-populated target into its placement directory.
func (rt *RemoteTarget) ListObjects() ([]osd.Info, error) {
	rt.tick()
	return rt.client().List()
}
