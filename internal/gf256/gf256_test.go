package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if got := Add(0x53, 0xca); got != 0x53^0xca {
		t.Fatalf("Add(0x53,0xca) = %#x, want %#x", got, 0x53^0xca)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d,1) = %d, want %d", a, got, a)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d,0) = %d, want 0", a, got)
		}
	}
}

func TestMulKnownVectors(t *testing.T) {
	// Known products under polynomial 0x11d.
	tests := []struct{ a, b, want byte }{
		{2, 2, 4},
		{0x80, 2, 0x1d},    // overflow wraps through the polynomial
		{0xb6, 0x53, 0xee}, // spot value computed by carry-less mul + 0x11d reduction
	}
	for _, tc := range tests {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMulAgainstSlowReference(t *testing.T) {
	slow := func(a, b byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if b&1 != 0 {
				p ^= a
			}
			hi := a&0x80 != 0
			a <<= 1
			if hi {
				a ^= byte(polynomial & 0xff)
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(dist, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInverseRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv, err := Inverse(byte(a))
		if err != nil {
			t.Fatalf("Inverse(%d): %v", a, err)
		}
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("a*Inverse(a) = %d for a=%d, want 1", got, a)
		}
		for b := 1; b < 256; b++ {
			q, err := Div(byte(a), byte(b))
			if err != nil {
				t.Fatalf("Div(%d,%d): %v", a, b, err)
			}
			if got := Mul(q, byte(b)); got != byte(a) {
				t.Fatalf("Div(%d,%d)*%d = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestDivByZero(t *testing.T) {
	if _, err := Div(5, 0); err == nil {
		t.Fatal("Div(5,0) succeeded, want error")
	}
	if _, err := Inverse(0); err == nil {
		t.Fatal("Inverse(0) succeeded, want error")
	}
}

func TestExpCycles(t *testing.T) {
	if Exp(0) != 1 {
		t.Fatalf("Exp(0) = %d, want 1", Exp(0))
	}
	if Exp(255) != Exp(0) {
		t.Fatalf("Exp should have period 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatalf("Exp(-1) = %d, want Exp(254) = %d", Exp(-1), Exp(254))
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	src := make([]byte, 300)
	for i := range src {
		src[i] = byte(i * 7)
	}
	dst := make([]byte, len(src))
	MulSlice(0x5a, src, dst)
	for i := range src {
		if dst[i] != Mul(0x5a, src[i]) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	src := make([]byte, 123)
	dst := make([]byte, 123)
	want := make([]byte, 123)
	for i := range src {
		src[i] = byte(i*3 + 1)
		dst[i] = byte(i * 11)
		want[i] = dst[i] ^ Mul(0x9c, src[i])
	}
	MulAddSlice(0x9c, src, dst)
	if !bytes.Equal(dst, want) {
		t.Fatal("MulAddSlice mismatch")
	}
}

func TestMulAddSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	dst := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}
	orig := append([]byte(nil), dst...)
	MulAddSlice(0, src, dst)
	if !bytes.Equal(dst, orig) {
		t.Fatal("MulAddSlice with c=0 modified dst")
	}
	MulAddSlice(1, src, dst)
	for i := range dst {
		if dst[i] != orig[i]^src[i] {
			t.Fatalf("MulAddSlice with c=1 not pure xor at %d", i)
		}
	}
}

func TestXorSliceUnrolledTail(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 100} {
		src := make([]byte, n)
		dst := make([]byte, n)
		want := make([]byte, n)
		for i := 0; i < n; i++ {
			src[i] = byte(i + 1)
			dst[i] = byte(i * 5)
			want[i] = src[i] ^ dst[i]
		}
		XorSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XorSlice wrong for n=%d", n)
		}
	}
}

func TestMatrixIdentityMul(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := []byte{1, 2, 3, 4, 5, 6, 7, 9, 11}
	copy(m.Data, vals)
	id := Identity(3)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, vals) {
		t.Fatal("M × I != M")
	}
	got2, err := id.Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Data, vals) {
		t.Fatal("I × M != M")
	}
}

func TestMatrixMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	// An invertible matrix built from distinct Vandermonde rows.
	v := Vandermonde(6, 3)
	m := v.SubMatrix(1, 4, 0, 3) // rows 1..3 are distinct points, invertible
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := m.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prod.Data, Identity(3).Data) {
		t.Fatalf("M × M^-1 != I: %v", prod.Data)
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 3)
	m.Set(1, 1, 5) // duplicate row
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestMatrixInvertNonSquare(t *testing.T) {
	if _, err := NewMatrix(2, 3).Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestVandermondeShape(t *testing.T) {
	v := Vandermonde(5, 3)
	// Row 0 is [1, 0, 0]: evaluation point 0.
	if v.At(0, 0) != 1 || v.At(0, 1) != 0 || v.At(0, 2) != 0 {
		t.Fatalf("row 0 = %v, want [1 0 0]", v.Row(0))
	}
	// Row 1 is [1, 1, 1]: evaluation point 1.
	for c := 0; c < 3; c++ {
		if v.At(1, c) != 1 {
			t.Fatalf("row 1 = %v, want all ones", v.Row(1))
		}
	}
	// Row r, col c = r^c.
	if v.At(3, 2) != Mul(3, 3) {
		t.Fatalf("V[3][2] = %d, want %d", v.At(3, 2), Mul(3, 3))
	}
}

func TestSubMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = byte(i)
	}
	s := m.SubMatrix(1, 3, 1, 3)
	want := []byte{5, 6, 9, 10}
	if !bytes.Equal(s.Data, want) {
		t.Fatalf("SubMatrix = %v, want %v", s.Data, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func BenchmarkMulAddSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x37, src, dst)
	}
}

func BenchmarkXorSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}
