package transport

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/backend"
	"github.com/reo-cache/reo/internal/cache"
	"github.com/reo-cache/reo/internal/hdd"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
)

// remoteFixture wires a full initiator/target split: the cache manager on
// one side of a TCP connection, the store on the other.
type remoteFixture struct {
	target  *RemoteTarget
	manager *cache.Manager
	backend *backend.Store
}

func newRemoteFixture(t *testing.T) *remoteFixture {
	t.Helper()
	st := newTarget(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ln)
	t.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	rt, err := NewRemoteTarget(client)
	if err != nil {
		t.Fatal(err)
	}
	be := backend.New(hdd.WD1TB(1 << 30))
	mgr, err := cache.New(cache.Config{
		Store:            rt,
		Backend:          be,
		NetworkBandwidth: 1.25e9,
		NetworkRTT:       100 * time.Microsecond,
		RefreshInterval:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &remoteFixture{target: rt, manager: mgr, backend: be}
}

func TestRemoteTargetHandshake(t *testing.T) {
	f := newRemoteFixture(t)
	pol := f.target.Policy()
	if pol.Name() != "Reo-40%" {
		t.Fatalf("policy = %q", pol.Name())
	}
	if !pol.Differentiated() {
		t.Fatal("Reo policy must survive the wire as differentiated")
	}
	if f.target.Devices() != 5 || f.target.AliveDevices() != 5 {
		t.Fatalf("devices = %d/%d", f.target.AliveDevices(), f.target.Devices())
	}
	if f.target.RawCapacity() != 5*(4<<20) {
		t.Fatalf("capacity = %d", f.target.RawCapacity())
	}
}

func TestRemoteCacheMissThenHit(t *testing.T) {
	f := newRemoteFixture(t)
	id := oid(1)
	want := make([]byte, 20_000)
	rand.New(rand.NewSource(1)).Read(want)
	if _, err := f.backend.Put(id, want); err != nil {
		t.Fatal(err)
	}
	res, err := f.manager.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("first remote read should miss")
	}
	res, err = f.manager.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("second remote read should hit")
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("data corrupted over the wire")
	}
}

func TestRemoteWriteBackFlush(t *testing.T) {
	f := newRemoteFixture(t)
	id := oid(2)
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(data)
	res, err := f.manager.Write(id, data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("remote write-back not absorbed")
	}
	if f.backend.Has(id) {
		t.Fatal("write leaked to backend synchronously")
	}
	f.manager.FlushAll()
	got, _, err := f.backend.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("flush over the wire corrupted data")
	}
}

func TestRemoteFailureDetection(t *testing.T) {
	f := newRemoteFixture(t)
	id := oid(3)
	want := make([]byte, 30_000)
	rand.New(rand.NewSource(3)).Read(want)
	if _, err := f.backend.Put(id, want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ { // warm and bump frequency
		if _, err := f.manager.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	f.manager.RefreshClassification()

	// Fail a device through a second admin connection.
	adminConn, err := Dial(f.target.client().conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer adminConn.Close()
	if err := adminConn.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := f.target.Refresh(); err != nil {
		t.Fatal(err)
	}
	if f.target.AliveDevices() != 4 {
		t.Fatalf("alive = %d after failure", f.target.AliveDevices())
	}
	// The hot (2-parity) object still reads, degraded, with correct bytes.
	res, err := f.manager.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("hot object lost on single failure")
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("degraded remote read corrupted data")
	}
}

func TestRemoteTargetHealthAutoRefresh(t *testing.T) {
	f := newRemoteFixture(t)
	admin, err := Dial(f.target.client().conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.FailDevice(4); err != nil {
		t.Fatal(err)
	}
	// Drive enough operations to trigger the lazy refresh.
	id := oid(4)
	if _, err := f.backend.Put(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < statsRefreshOps+2; i++ {
		if _, err := f.manager.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	if f.target.AliveDevices() != 4 {
		t.Fatalf("lazy refresh never observed the failure: alive = %d", f.target.AliveDevices())
	}
}

func TestPolicyWireRoundTrip(t *testing.T) {
	pols := []policy.Policy{
		policy.Reo{ParityBudget: 0.10},
		policy.Reo{ParityBudget: 0.40},
		policy.Uniform{ParityChunks: 0},
		policy.Uniform{ParityChunks: 2},
		policy.FullReplication{},
	}
	for _, p := range pols {
		kind, param := describePolicy(p)
		got := policyFromWire(kind, param)
		if got.Name() != p.Name() || got.Differentiated() != p.Differentiated() {
			t.Errorf("policy %s did not survive the wire: got %s", p.Name(), got.Name())
		}
		for _, class := range []osd.Class{osd.ClassMetadata, osd.ClassDirty, osd.ClassHotClean, osd.ClassColdClean} {
			if got.SchemeFor(class) != p.SchemeFor(class) {
				t.Errorf("policy %s class %v scheme changed over the wire", p.Name(), class)
			}
		}
	}
}
