package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/target"
	"github.com/reo-cache/reo/internal/transport"
)

// AddTarget joins a new shard to the ring and migrates onto it the ~1/N of
// existing objects whose ring ownership moved. The swap is route-to-old-
// until-committed: the ring flips first (so brand-new objects land on the
// new shard immediately), then each moved object is copied under its stripe
// write lock and its directory entry flipped — reads and writes to every
// other object proceed throughout.
func (ini *Initiator) AddTarget(name string, t target.Target) (RebalanceStats, error) {
	if t == nil {
		return RebalanceStats{}, errors.New("cluster: nil target")
	}
	ini.rebalanceMu.Lock()
	defer ini.rebalanceMu.Unlock()

	ini.mu.Lock()
	if _, dup := ini.shards[name]; dup {
		ini.mu.Unlock()
		return RebalanceStats{}, fmt.Errorf("cluster: shard %q already a member", name)
	}
	var pol = t.Policy()
	for _, existing := range ini.shards {
		if err := samePolicy(existing.Policy(), pol); err != nil {
			ini.mu.Unlock()
			return RebalanceStats{}, fmt.Errorf("cluster: shard %q: %w", name, err)
		}
		break
	}
	if err := ini.ring.Add(name); err != nil {
		ini.mu.Unlock()
		return RebalanceStats{}, err
	}
	ini.shards[name] = t
	ini.mu.Unlock()

	// Adopt anything the new target already holds (a rejoining shard),
	// then drain misplaced objects toward their new owners.
	if err := ini.adopt(name, t); err != nil {
		return RebalanceStats{}, fmt.Errorf("cluster: adopting shard %q: %w", name, err)
	}
	return ini.drainMisplaced(""), nil
}

// RemoveTarget retires a shard: it leaves the ring immediately (new objects
// stop landing on it), its objects migrate to their new owners, and once
// drained it is detached. If some objects cannot move (destination full),
// the shard stays attached — still serving those objects via the directory
// — the ring stays without it, and the error reports how many remain; a
// later retry can finish the drain.
func (ini *Initiator) RemoveTarget(name string) (RebalanceStats, error) {
	ini.rebalanceMu.Lock()
	defer ini.rebalanceMu.Unlock()

	ini.mu.Lock()
	if _, ok := ini.shards[name]; !ok {
		ini.mu.Unlock()
		return RebalanceStats{}, fmt.Errorf("cluster: shard %q not a member", name)
	}
	if len(ini.shards) == 1 {
		ini.mu.Unlock()
		return RebalanceStats{}, errors.New("cluster: cannot remove the last shard")
	}
	if ini.ring.Has(name) {
		if err := ini.ring.Remove(name); err != nil {
			ini.mu.Unlock()
			return RebalanceStats{}, err
		}
	}
	ini.mu.Unlock()

	stats := ini.drainMisplaced(name)
	remaining := ini.objectsOn(name)
	if remaining > 0 {
		return stats, fmt.Errorf("cluster: shard %q not fully drained: %d objects remain (will retry on next RemoveTarget)", name, remaining)
	}
	ini.mu.Lock()
	delete(ini.shards, name)
	ini.mu.Unlock()
	return stats, nil
}

// drainMisplaced migrates every directory entry whose shard disagrees with
// the current ring. When leaving is non-empty, only entries on that shard
// are considered (a removal drains exactly the retiring shard; arcs that
// changed hands between surviving members are left alone — consistent
// hashing guarantees a removal reassigns only the removed member's arcs
// anyway).
func (ini *Initiator) drainMisplaced(leaving string) RebalanceStats {
	var stats RebalanceStats
	for i := range ini.stripes {
		st := &ini.stripes[i]

		// Snapshot candidates under the read lock; each migration then
		// re-checks under the write lock, so entries that moved or vanished
		// in between are handled, not corrupted.
		st.mu.RLock()
		ini.mu.RLock()
		var moved []osd.ObjectID
		for id, p := range st.objs {
			if leaving != "" && p.shard != leaving {
				continue
			}
			if ini.ring.Owner(id) != p.shard {
				moved = append(moved, id)
			}
		}
		ini.mu.RUnlock()
		st.mu.RUnlock()

		stats.Planned += len(moved)
		for _, id := range moved {
			ini.migrateObject(st, id, &stats)
		}
	}
	return stats
}

// migrateObject moves one object to its ring owner under the stripe write
// lock: copy to the new shard, delete from the old, flip the directory
// entry. Requests for the object route to the old shard until the flip —
// the stripe lock guarantees none are in flight during the move.
func (ini *Initiator) migrateObject(st *dirStripe, id osd.ObjectID, stats *RebalanceStats) {
	st.mu.Lock()
	defer st.mu.Unlock()

	p := st.objs[id]
	if p == nil {
		return // deleted since planning
	}
	ini.mu.RLock()
	dest := ini.ring.Owner(id)
	src, srcOK := ini.shards[p.shard]
	dst, dstOK := ini.shards[dest]
	ini.mu.RUnlock()
	if dest == p.shard {
		return // already home (concurrent rewrite moved it)
	}
	if !srcOK || !dstOK {
		return
	}

	buf, _, _, err := src.GetCtx(nil, id)
	if errors.Is(err, store.ErrNotFound) {
		delete(st.objs, id)
		stats.Dropped++
		return
	}
	if err != nil {
		stats.Skipped++
		return
	}
	data := buf.Bytes()
	if _, err := dst.PutCtx(nil, id, data, p.class, p.dirty); err != nil {
		buf.Release()
		// Destination refused (e.g. flash full): the object stays where it
		// is, still routable via the directory.
		stats.Skipped++
		return
	}
	size := int64(len(data))
	buf.Release()
	// Best-effort: a failed source delete leaves a dead copy the next scrub
	// or adoption pass will reconcile; routing already points at dest.
	_ = src.Delete(id)
	p.shard = dest
	p.size = size
	stats.Moved++
	stats.MovedBytes += size
	ini.migratedObjects.Add(1)
	ini.migratedBytes.Add(size)
}

// objectsOn counts directory entries currently placed on a shard.
func (ini *Initiator) objectsOn(name string) int {
	n := 0
	for i := range ini.stripes {
		st := &ini.stripes[i]
		st.mu.RLock()
		for _, p := range st.objs {
			if p.shard == name {
				n++
			}
		}
		st.mu.RUnlock()
	}
	return n
}

// ShardStats is one shard's health and occupancy, gathered by Stats.
type ShardStats struct {
	Name            string
	Objects         int64
	UsedBytes       int64
	RawCapacity     int64
	SpaceEfficiency float64
	AliveDevices    int
	Devices         int
	RecoveryActive  bool
	RecoveryQueue   int
	// Err carries a per-shard collection failure; the other shards still
	// report.
	Err error
}

// Stats fans out to every shard concurrently and returns per-shard health,
// sorted by shard name.
func (ini *Initiator) Stats() []ShardStats {
	type member struct {
		name string
		t    target.Target
	}
	ini.mu.RLock()
	members := make([]member, 0, len(ini.shards))
	for name, t := range ini.shards {
		members = append(members, member{name, t})
	}
	ini.mu.RUnlock()

	out := make([]ShardStats, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m member) {
			defer wg.Done()
			out[i] = shardStats(m.name, m.t)
		}(i, m)
	}
	wg.Wait()
	sortShardStats(out)
	return out
}

func sortShardStats(s []ShardStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// shardStats collects one shard's stats via whichever surface it has: the
// in-process store's accessors or the remote target's stats round-trip.
func shardStats(name string, t target.Target) ShardStats {
	s := ShardStats{
		Name:         name,
		RawCapacity:  t.RawCapacity(),
		AliveDevices: t.AliveDevices(),
		Devices:      t.Devices(),
	}
	switch v := t.(type) {
	case *transport.RemoteTarget:
		body, err := v.TargetStats()
		if err != nil {
			s.Err = err
			return s
		}
		s.Objects = body.Objects
		s.UsedBytes = body.UsedBytes
		s.SpaceEfficiency = body.SpaceEfficiency
		s.RecoveryActive = body.RecoveryActive
		s.RecoveryQueue = int(body.RecoveryQueue)
	default:
		if c, ok := t.(interface{ ObjectCount() int }); ok {
			s.Objects = int64(c.ObjectCount())
		}
		if u, ok := t.(interface{ UsedBytes() int64 }); ok {
			s.UsedBytes = u.UsedBytes()
		}
		if e, ok := t.(interface{ SpaceEfficiency() float64 }); ok {
			s.SpaceEfficiency = e.SpaceEfficiency()
		}
		if r, ok := t.(interface{ RecoveryActive() bool }); ok {
			s.RecoveryActive = r.RecoveryActive()
		}
		if q, ok := t.(interface{ RecoveryQueueLen() int }); ok {
			s.RecoveryQueue = q.RecoveryQueueLen()
		}
	}
	return s
}

// ScrubRepair fans a scrub-and-repair pass out to every in-process shard
// concurrently and merges the reports. Remote shards have no scrub wire op
// and are skipped; the skipped count tells the caller to scrub those
// targets locally (reoctl against each reotarget).
func (ini *Initiator) ScrubRepair() (store.ScrubRepairReport, time.Duration, int, error) {
	ini.mu.RLock()
	type scrubber interface {
		ScrubRepair() (store.ScrubRepairReport, time.Duration, error)
	}
	var able []scrubber
	skipped := 0
	for _, t := range ini.shards {
		if s, ok := t.(scrubber); ok {
			able = append(able, s)
		} else {
			skipped++
		}
	}
	ini.mu.RUnlock()

	reports := make([]store.ScrubRepairReport, len(able))
	costs := make([]time.Duration, len(able))
	errs := make([]error, len(able))
	var wg sync.WaitGroup
	for i, s := range able {
		wg.Add(1)
		go func(i int, s scrubber) {
			defer wg.Done()
			reports[i], costs[i], errs[i] = s.ScrubRepair()
		}(i, s)
	}
	wg.Wait()

	var merged store.ScrubRepairReport
	var cost time.Duration
	for i := range reports {
		if errs[i] != nil {
			return merged, cost, skipped, errs[i]
		}
		r := reports[i]
		merged.ObjectsScanned += r.ObjectsScanned
		merged.StripesScanned += r.StripesScanned
		merged.StripesHealthy += r.StripesHealthy
		merged.StripesDegraded += r.StripesDegraded
		merged.StripesLost += r.StripesLost
		merged.SilentlyCorrupted = append(merged.SilentlyCorrupted, r.SilentlyCorrupted...)
		merged.StripesRepaired += r.StripesRepaired
		merged.Invalidated = append(merged.Invalidated, r.Invalidated...)
		merged.UnrepairableDirty = append(merged.UnrepairableDirty, r.UnrepairableDirty...)
		// Shards scrub in parallel wall-clock; the pass costs as much as
		// the slowest shard.
		if costs[i] > cost {
			cost = costs[i]
		}
	}
	return merged, cost, skipped, nil
}

// RecoverStep fans one bounded recovery step out to every shard
// concurrently. It returns the total objects rebuilt and whether every
// shard reports recovery complete.
func (ini *Initiator) RecoverStep(maxPerShard int) (rebuilt int, done bool, err error) {
	type member struct {
		name string
		t    target.Target
	}
	ini.mu.RLock()
	members := make([]member, 0, len(ini.shards))
	for name, t := range ini.shards {
		members = append(members, member{name, t})
	}
	ini.mu.RUnlock()

	type result struct {
		rebuilt int
		done    bool
		err     error
	}
	results := make([]result, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m member) {
			defer wg.Done()
			switch v := m.t.(type) {
			case *transport.RemoteTarget:
				n, d, e := v.RecoverStep(maxPerShard)
				results[i] = result{n, d, e}
			case interface {
				RecoverStep(int) (time.Duration, int, bool, error)
			}:
				_, n, d, e := v.RecoverStep(maxPerShard)
				results[i] = result{n, d, e}
			default:
				results[i] = result{0, true, nil}
			}
		}(i, m)
	}
	wg.Wait()

	done = true
	for i, r := range results {
		if r.err != nil && err == nil {
			err = fmt.Errorf("cluster: shard %q: %w", members[i].name, r.err)
		}
		rebuilt += r.rebuilt
		if !r.done {
			done = false
		}
	}
	return rebuilt, done, err
}
