package osd

import (
	"fmt"
	"sort"
	"sync"
)

// Directory is the in-memory object namespace of one OSD logical unit: the
// root object, its partitions, and each partition's collection and user
// objects. The paper's modified osd-target replaces the original file-system
// + SQLite metadata with "a hash table to manage the data storage" (§V);
// Directory is that hash table, with the OSD structural rules (Figure 2,
// Table I) enforced on top.
//
// Directory holds object *metadata* only; object payloads live in the stripe
// store. All methods are safe for concurrent use.
type Directory struct {
	mu         sync.RWMutex
	partitions map[uint64]*partition
	nextOID    uint64
}

type partition struct {
	objects     map[uint64]*Info
	collections map[uint64]map[uint64]bool // collection OID -> member OIDs
}

// NewDirectory returns a directory with the default partition (FirstPID) and
// the exofs-reserved metadata objects (Super Block, Device Table, Root
// Directory) pre-created as ClassMetadata objects, mirroring Table I.
func NewDirectory() *Directory {
	d := &Directory{
		partitions: make(map[uint64]*partition),
		nextOID:    FirstUserOID,
	}
	d.partitions[FirstPID] = newPartition()
	for _, oid := range []uint64{SuperBlockOID, DeviceTableOID, RootDirectoryOID} {
		d.partitions[FirstPID].objects[oid] = &Info{
			ID:    ObjectID{PID: FirstPID, OID: oid},
			Type:  TypeUser,
			Class: ClassMetadata,
			Size:  4096, // the paper notes the largest metadata object is 4KB
		}
	}
	return d
}

func newPartition() *partition {
	return &partition{
		objects:     make(map[uint64]*Info),
		collections: make(map[uint64]map[uint64]bool),
	}
}

// CreatePartition adds a partition with the given PID.
func (d *Directory) CreatePartition(pid uint64) error {
	if pid < FirstPID {
		return fmt.Errorf("%w: partition ID %#x below %#x", ErrInvalidID, pid, FirstPID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.partitions[pid]; ok {
		return fmt.Errorf("%w: partition %#x", ErrObjectExists, pid)
	}
	d.partitions[pid] = newPartition()
	return nil
}

// Partitions returns the PIDs of all partitions in ascending order.
func (d *Directory) Partitions() []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint64, 0, len(d.partitions))
	for pid := range d.partitions {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllocateOID reserves the next free user-object OID. Allocated OIDs start
// above the exofs reservations.
func (d *Directory) AllocateOID() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	oid := d.nextOID
	d.nextOID++
	return oid
}

// CreateObject records a new user or collection object.
func (d *Directory) CreateObject(info Info) error {
	if info.ID.OID < FirstOID {
		return fmt.Errorf("%w: object ID %#x below %#x", ErrInvalidID, info.ID.OID, FirstOID)
	}
	if info.Type != TypeUser && info.Type != TypeCollection {
		return fmt.Errorf("%w: directory holds user/collection objects, got %v", ErrInvalidID, info.Type)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.partitions[info.ID.PID]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoSuchPartition, info.ID.PID)
	}
	if _, exists := p.objects[info.ID.OID]; exists {
		return fmt.Errorf("%w: %v", ErrObjectExists, info.ID)
	}
	cp := info
	if info.Attributes != nil {
		cp.Attributes = make(map[uint32][]byte, len(info.Attributes))
		for k, v := range info.Attributes {
			cp.Attributes[k] = append([]byte(nil), v...)
		}
	}
	p.objects[info.ID.OID] = &cp
	if info.Type == TypeCollection {
		p.collections[info.ID.OID] = make(map[uint64]bool)
	}
	return nil
}

// Lookup returns a copy of the object's metadata.
func (d *Directory) Lookup(id ObjectID) (Info, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info, err := d.locked(id)
	if err != nil {
		return Info{}, err
	}
	return *info, nil
}

// Exists reports whether the object is present.
func (d *Directory) Exists(id ObjectID) bool {
	_, err := d.Lookup(id)
	return err == nil
}

// Update applies fn to the object's metadata under the directory lock.
func (d *Directory) Update(id ObjectID, fn func(*Info)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	info, err := d.locked(id)
	if err != nil {
		return err
	}
	fn(info)
	return nil
}

// SetClass updates the object's class label (the effect of a #SETID#
// command).
func (d *Directory) SetClass(id ObjectID, class Class) error {
	if !class.Valid() {
		return fmt.Errorf("%w: class %d", ErrInvalidID, class)
	}
	return d.Update(id, func(info *Info) { info.Class = class })
}

// Remove deletes the object and its collection memberships.
func (d *Directory) Remove(id ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.partitions[id.PID]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoSuchPartition, id.PID)
	}
	info, ok := p.objects[id.OID]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchObject, id)
	}
	delete(p.objects, id.OID)
	if info.Type == TypeCollection {
		delete(p.collections, id.OID)
	} else {
		for _, members := range p.collections {
			delete(members, id.OID)
		}
	}
	return nil
}

// AddToCollection adds a user object to a collection in the same partition.
// Per OSD-2, a user object may belong to zero or more collections.
func (d *Directory) AddToCollection(collection, member ObjectID) error {
	if collection.PID != member.PID {
		return fmt.Errorf("%w: collection and member must share a partition", ErrInvalidID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.partitions[collection.PID]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoSuchPartition, collection.PID)
	}
	members, ok := p.collections[collection.OID]
	if !ok {
		return fmt.Errorf("%w: collection %v", ErrNoSuchObject, collection)
	}
	if _, ok := p.objects[member.OID]; !ok {
		return fmt.Errorf("%w: member %v", ErrNoSuchObject, member)
	}
	members[member.OID] = true
	return nil
}

// CollectionMembers returns the member OIDs of a collection in ascending
// order.
func (d *Directory) CollectionMembers(collection ObjectID) ([]uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.partitions[collection.PID]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrNoSuchPartition, collection.PID)
	}
	members, ok := p.collections[collection.OID]
	if !ok {
		return nil, fmt.Errorf("%w: collection %v", ErrNoSuchObject, collection)
	}
	out := make([]uint64, 0, len(members))
	for oid := range members {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// List returns copies of all objects in a partition, ordered by OID.
func (d *Directory) List(pid uint64) ([]Info, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.partitions[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrNoSuchPartition, pid)
	}
	out := make([]Info, 0, len(p.objects))
	for _, info := range p.objects {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.OID < out[j].ID.OID })
	return out, nil
}

// CountByClass returns the number of objects per class across all
// partitions.
func (d *Directory) CountByClass() [NumClasses]int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out [NumClasses]int
	for _, p := range d.partitions {
		for _, info := range p.objects {
			if info.Class.Valid() {
				out[info.Class]++
			}
		}
	}
	return out
}

func (d *Directory) locked(id ObjectID) (*Info, error) {
	p, ok := d.partitions[id.PID]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrNoSuchPartition, id.PID)
	}
	info, ok := p.objects[id.OID]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchObject, id)
	}
	return info, nil
}
