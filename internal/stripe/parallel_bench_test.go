package stripe

import (
	"testing"

	"github.com/reo-cache/reo/internal/policy"
)

// BenchmarkStripeWriteParallel measures aggregate wall-clock throughput of
// concurrent clients writing (and freeing) erasure-coded objects through one
// manager. Before the lock narrowing, every encode and chunk write serialized
// behind the manager mutex; after it, encodes overlap and chunk writes fan
// out to the devices concurrently.
func BenchmarkStripeWriteParallel(b *testing.B) {
	const objSize = 64 << 10
	m := testManager(b, 5, 16<<10)
	data := randBytes(1, objSize)
	b.SetBytes(objSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ids, _, err := m.Write(data, policy.Parity(2))
			if err != nil {
				b.Error(err)
				return
			}
			m.Free(ids)
		}
	})
}

// BenchmarkStripeReadParallel measures concurrent healthy reads of a shared
// set of stripes.
func BenchmarkStripeReadParallel(b *testing.B) {
	const objSize = 64 << 10
	m := testManager(b, 5, 16<<10)
	data := randBytes(2, objSize)
	ids, _, err := m.Write(data, policy.Parity(2))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(objSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := m.Read(ids, objSize); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
