package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/target"
)

// Batched cluster routing: a batch is split by owning shard (directory
// first, ring for unknown objects — the same resolution single ops use),
// the per-shard sub-batches fan out concurrently, and results reassemble in
// caller order with per-sub-op errors. Each sub-batch rides the shard
// target's own batch path, so against remote shards an N-object batch
// touching K shards costs K wire frames instead of N.
//
// Lock discipline: every route stripe the batch touches is acquired before
// any shard is called, in ascending stripe index. Single-object operations
// and the rebalancer take at most one stripe lock at a time, so the sorted
// multi-stripe acquisition cannot deadlock against them — or against
// another batch, which sorts the same way.

var _ target.BatchTarget = (*Initiator)(nil)

// BatchStats snapshots the initiator's batch-routing counters.
type BatchStats struct {
	// Calls counts batch operations routed; SubOps the object operations
	// they carried.
	Calls, SubOps int64
	// Fanout counts per-shard sub-batches dispatched; Fanout/Calls is the
	// mean fan-out width.
	Fanout int64
	// PartialFailures counts batches where some sub-ops succeeded and
	// others failed — the outcome callers must be prepared to unpick.
	PartialFailures int64
}

// FanoutWidth is the mean number of shard sub-batches per batch call.
func (b BatchStats) FanoutWidth() float64 {
	if b.Calls == 0 {
		return 0
	}
	return float64(b.Fanout) / float64(b.Calls)
}

// BatchCounters snapshots the initiator's batch-routing counters.
func (ini *Initiator) BatchCounters() BatchStats {
	return BatchStats{
		Calls:           ini.batchCalls.Load(),
		SubOps:          ini.batchSubOps.Load(),
		Fanout:          ini.batchFanout.Load(),
		PartialFailures: ini.batchPartialFailures.Load(),
	}
}

// lockStripes acquires the route-lock stripes covering ids in ascending
// stripe index (each stripe once) and returns an unlock function. rlock
// selects read locks (batch gets) over write locks (batch puts).
func (ini *Initiator) lockStripes(ids []osd.ObjectID, rlock bool) (unlock func()) {
	seen := make(map[int]struct{}, len(ids))
	idxs := make([]int, 0, len(ids))
	for _, id := range ids {
		idx := int(HashID(id) & routeStripeMask)
		if _, dup := seen[idx]; dup {
			continue
		}
		seen[idx] = struct{}{}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		if rlock {
			ini.stripes[idx].mu.RLock()
		} else {
			ini.stripes[idx].mu.Lock()
		}
	}
	return func() {
		for _, idx := range idxs {
			if rlock {
				ini.stripes[idx].mu.RUnlock()
			} else {
				ini.stripes[idx].mu.Unlock()
			}
		}
	}
}

// shardBatch is one shard's slice of a batch: the sub-ops routed to it and
// their positions in the caller's order.
type shardBatch struct {
	name    string
	target  target.Target
	indices []int
}

// planBatch resolves every id to its owning shard under the already-held
// stripe locks, returning per-shard sub-batches in first-touched order.
// Resolution errors (unknown shard) are recorded directly into errs.
func (ini *Initiator) planBatch(ids []osd.ObjectID, errs []error) []*shardBatch {
	var plan []*shardBatch
	byName := make(map[string]*shardBatch)
	for i, id := range ids {
		st := ini.stripeFor(id)
		name, t, _, err := ini.resolve(st, id)
		if err != nil {
			errs[i] = err
			continue
		}
		sb := byName[name]
		if sb == nil {
			sb = &shardBatch{name: name, target: t}
			byName[name] = sb
			plan = append(plan, sb)
		}
		sb.indices = append(sb.indices, i)
	}
	return plan
}

// GetBatchCtx implements target.BatchTarget: one directory resolution pass,
// concurrent per-shard fan-out, caller-order reassembly. Per-object
// semantics match GetCtx, including stale-directory cleanup on not-found.
func (ini *Initiator) GetBatchCtx(rc *reqctx.Ctx, ids []osd.ObjectID) []target.BatchGetResult {
	out := make([]target.BatchGetResult, len(ids))
	if len(ids) == 0 {
		return out
	}
	start := time.Now()
	errs := make([]error, len(ids))
	unlock := ini.lockStripes(ids, true)
	plan := ini.planBatch(ids, errs)
	var wg sync.WaitGroup
	for _, sb := range plan {
		sub := make([]osd.ObjectID, len(sb.indices))
		for j, i := range sb.indices {
			sub[j] = ids[i]
		}
		sb := sb
		run := func() {
			results := target.GetBatch(sb.target, rc, sub)
			for j, i := range sb.indices {
				if j < len(results) {
					out[i] = results[j]
				}
			}
		}
		if len(plan) == 1 {
			run()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()
	unlock()
	for i := range errs {
		if errs[i] != nil {
			out[i].Err = errs[i]
		}
	}

	// Post-pass bookkeeping outside the read locks: stale directory entries
	// for objects their shard no longer holds, per-shard counters.
	failed := 0
	for _, sb := range plan {
		c := ini.countersFor(sb.name)
		for _, i := range sb.indices {
			res := &out[i]
			if res.Err == nil {
				c.ops.Add(1)
				if res.Buf != nil {
					c.bytesOut.Add(int64(res.Buf.Len()))
				}
				continue
			}
			failed++
			if errors.Is(res.Err, store.ErrNotFound) {
				st := ini.stripeFor(ids[i])
				st.mu.Lock()
				if p := st.objs[ids[i]]; p != nil && p.shard == sb.name {
					delete(st.objs, ids[i])
				}
				st.mu.Unlock()
			}
		}
	}
	for i := range errs {
		if errs[i] != nil {
			failed++
		}
	}
	ini.noteBatch(len(ids), len(plan), failed)
	ini.observe("cluster.get_batch", start)
	return out
}

// PutBatchCtx implements target.BatchTarget: the stripes covering the batch
// are write-locked (sorted), sub-batches fan out per shard, and successful
// sub-ops commit their placement entries before the locks drop — exactly
// the per-object commit PutCtx performs.
func (ini *Initiator) PutBatchCtx(rc *reqctx.Ctx, ops []target.BatchPut) []target.BatchPutResult {
	out := make([]target.BatchPutResult, len(ops))
	if len(ops) == 0 {
		return out
	}
	start := time.Now()
	ids := make([]osd.ObjectID, len(ops))
	for i := range ops {
		ids[i] = ops[i].ID
	}
	errs := make([]error, len(ops))
	unlock := ini.lockStripes(ids, false)
	plan := ini.planBatch(ids, errs)
	var wg sync.WaitGroup
	for _, sb := range plan {
		sub := make([]target.BatchPut, len(sb.indices))
		for j, i := range sb.indices {
			sub[j] = ops[i]
		}
		sb := sb
		run := func() {
			results := target.PutBatch(sb.target, rc, sub)
			for j, i := range sb.indices {
				if j < len(results) {
					out[i] = results[j]
				}
			}
		}
		if len(plan) == 1 {
			run()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()

	// Commit placements for the successes while the write locks are still
	// held, so a concurrent rebalance never observes a half-committed batch.
	for _, sb := range plan {
		c := ini.countersFor(sb.name)
		for _, i := range sb.indices {
			if out[i].Err != nil {
				continue
			}
			op := &ops[i]
			st := ini.stripeFor(op.ID)
			if p := st.objs[op.ID]; p != nil {
				p.class, p.dirty, p.size = op.Class, op.Dirty, int64(len(op.Data))
			} else {
				st.objs[op.ID] = &placement{
					shard: sb.name, class: op.Class, dirty: op.Dirty, size: int64(len(op.Data)),
				}
			}
			c.ops.Add(1)
			c.bytesIn.Add(int64(len(op.Data)))
		}
	}
	unlock()
	failed := 0
	for i := range errs {
		if errs[i] != nil {
			out[i].Err = errs[i]
		}
	}
	for i := range out {
		if out[i].Err != nil {
			failed++
		}
	}
	ini.noteBatch(len(ops), len(plan), failed)
	ini.observe("cluster.put_batch", start)
	return out
}

// noteBatch records one batch call in the routing counters.
func (ini *Initiator) noteBatch(subOps, fanout, failed int) {
	ini.batchCalls.Add(1)
	ini.batchSubOps.Add(int64(subOps))
	ini.batchFanout.Add(int64(fanout))
	if failed > 0 && failed < subOps {
		ini.batchPartialFailures.Add(1)
	}
}
