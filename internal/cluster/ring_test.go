package cluster

import (
	"fmt"
	"testing"

	"github.com/reo-cache/reo/internal/osd"
)

func sampleIDs(n int) []osd.ObjectID {
	ids := make([]osd.ObjectID, n)
	for i := range ids {
		ids[i] = osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID + uint64(i)}
	}
	return ids
}

func ringOf(t *testing.T, vnodes int, members ...string) *Ring {
	t.Helper()
	r := NewRing(vnodes)
	for _, m := range members {
		if err := r.Add(m); err != nil {
			t.Fatalf("Add(%q): %v", m, err)
		}
	}
	return r
}

// TestRingUniformity checks the load-spread property the vnode count is
// chosen for: at 128 vnodes each member's key share stays within ±10% of
// uniform.
func TestRingUniformity(t *testing.T) {
	const members = 8
	names := make([]string, members)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	r := ringOf(t, DefaultVnodes, names...)

	ids := sampleIDs(200_000)
	counts := make(map[string]int, members)
	for _, id := range ids {
		counts[r.Owner(id)]++
	}
	uniform := float64(len(ids)) / members
	for _, name := range names {
		got := float64(counts[name])
		dev := (got - uniform) / uniform
		if dev < -0.10 || dev > 0.10 {
			t.Errorf("member %s owns %.0f keys, %.1f%% off uniform %.0f (want within ±10%%)",
				name, got, dev*100, uniform)
		}
	}
}

// TestRingDeterminism checks placement is a pure function of membership:
// insertion order, process, and run must not matter.
func TestRingDeterminism(t *testing.T) {
	a := ringOf(t, DefaultVnodes, "t0", "t1", "t2", "t3")
	b := ringOf(t, DefaultVnodes, "t3", "t1", "t0", "t2")
	for _, id := range sampleIDs(50_000) {
		if ao, bo := a.Owner(id), b.Owner(id); ao != bo {
			t.Fatalf("owner of %v differs by insertion order: %q vs %q", id, ao, bo)
		}
	}
	// And across clones (the rebalance path snapshots with Clone).
	c := a.Clone()
	for _, id := range sampleIDs(10_000) {
		if a.Owner(id) != c.Owner(id) {
			t.Fatalf("clone disagrees with original for %v", id)
		}
	}
}

// TestRingMinimalMovementAdd checks the consistent-hashing contract on
// grow: every object that moves, moves TO the new member, and the moved
// fraction is close to 1/(N+1).
func TestRingMinimalMovementAdd(t *testing.T) {
	before := ringOf(t, DefaultVnodes, "t0", "t1", "t2", "t3")
	after := before.Clone()
	if err := after.Add("t4"); err != nil {
		t.Fatal(err)
	}

	ids := sampleIDs(100_000)
	moved := 0
	for _, id := range ids {
		oldOwner, newOwner := before.Owner(id), after.Owner(id)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "t4" {
			t.Fatalf("object %v moved %q -> %q; only arcs claimed by the new member may move",
				id, oldOwner, newOwner)
		}
	}
	frac := float64(moved) / float64(len(ids))
	// Ideal is 1/5 = 20%; vnode jitter allows some slack but anything near
	// 2x ideal means arcs moved that shouldn't have.
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("add moved %.1f%% of keys; want ~20%%", frac*100)
	}
}

// TestRingMinimalMovementRemove checks the contract on shrink: only the
// removed member's objects move, and the moved fraction stays within the
// rebalance budget (≤ 35% for a 4-member ring).
func TestRingMinimalMovementRemove(t *testing.T) {
	before := ringOf(t, DefaultVnodes, "t0", "t1", "t2", "t3")
	after := before.Clone()
	if err := after.Remove("t2"); err != nil {
		t.Fatal(err)
	}

	ids := sampleIDs(100_000)
	moved := 0
	for _, id := range ids {
		oldOwner, newOwner := before.Owner(id), after.Owner(id)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if oldOwner != "t2" {
			t.Fatalf("object %v moved %q -> %q though its owner stayed on the ring",
				id, oldOwner, newOwner)
		}
		if newOwner == "t2" {
			t.Fatalf("object %v moved onto the removed member", id)
		}
	}
	frac := float64(moved) / float64(len(ids))
	if frac > 0.35 {
		t.Errorf("remove moved %.1f%% of keys; rebalance budget is 35%%", frac*100)
	}
	if frac < 0.15 {
		t.Errorf("remove moved only %.1f%% of keys; t2 should have owned ~25%%", frac*100)
	}
}

// TestRingMembership exercises the bookkeeping edges.
func TestRingMembership(t *testing.T) {
	r := NewRing(0)
	if err := r.Add(""); err == nil {
		t.Error("empty member name accepted")
	}
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("a"); err == nil {
		t.Error("duplicate member accepted")
	}
	if err := r.Remove("b"); err == nil {
		t.Error("removing absent member succeeded")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Members() = %v", got)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len() = %d after removing sole member", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Owner on empty ring did not panic")
		}
	}()
	r.Owner(osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID})
}
