// Package cluster scales Reo from one flash-array target to N: a
// consistent-hash ring routes every object to exactly one shard, an
// Initiator presents the whole cluster through the same target.Target
// interface a single store or RemoteTarget exposes, and membership changes
// rebalance online — migrating only the ~1/N of objects whose ring
// ownership moved, while reads and writes keep flowing.
package cluster

import (
	"fmt"
	"sort"

	"github.com/reo-cache/reo/internal/osd"
)

// DefaultVnodes is the virtual-node budget per member. At 128 the ring's
// per-shard key share stays within a few percent of uniform (see the ring
// property tests, which assert ±10%).
const DefaultVnodes = 128

// arcsPerVnode sets the arc granularity relative to the vnode budget. The
// ring carves the hash space into vnodes×arcsPerVnode equal arcs, so every
// member averages at least `vnodes` arcs — its virtual nodes — up to a
// fan-out of arcsPerVnode members.
const arcsPerVnode = 64

// Ring is a consistent-hash ring over named members. The 64-bit hash space
// is split into fixed equal-width arcs; each arc is anchored by a virtual
// node whose owner is the member winning a rendezvous (highest-random-
// weight) draw for that arc. Fixed equal arcs keep the load spread tight —
// a classic random-point ring at the same vnode count wanders ±20% from
// uniform, this construction stays within a few percent — while the
// rendezvous draw preserves strict minimal movement: adding a member
// reassigns only the arcs it wins (≈1/(N+1) of them), removing one
// redistributes only its arcs to each arc's runner-up.
//
// Placement is a pure function of (member names, vnode count, object ID):
// the same inputs produce the same ring in every process and run, so
// independent initiators route identically without coordination.
//
// Ring is not goroutine-safe; the Initiator guards it with its membership
// lock. Add/Remove mutate in place — callers snapshot with Clone when they
// need before/after views.
type Ring struct {
	vnodes int
	// arcs[i] indexes into members: the owner of hash arc i.
	arcs []int32
	// members is kept sorted; arc ownership is rebuilt (deterministically)
	// on every membership change, so index churn is harmless.
	members []string
	// memberHash caches each member's name hash for the rendezvous draw.
	memberHash []uint64
}

// NewRing returns an empty ring with the given virtual-node budget per
// member (<= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{
		vnodes: vnodes,
		arcs:   make([]int32, vnodes*arcsPerVnode),
	}
}

// HashID maps an object identity to its 64-bit ring coordinate: the
// (PID, OID) pair is mixed through a splitmix64-style finalizer so
// sequentially allocated OIDs scatter uniformly instead of clustering on
// one arc.
func HashID(id osd.ObjectID) uint64 {
	return mix64(id.PID*0x9E3779B97F4A7C15 + id.OID)
}

// mix64 is the splitmix64 finalizer: a cheap bijection whose output bits
// are uncorrelated with the input's.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// nameHash is FNV-1a over the member name.
func nameHash(member string) uint64 {
	const (
		fnvOffset = 0xCBF29CE484222325
		fnvPrime  = 0x100000001B3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= fnvPrime
	}
	return h
}

// arcScore is the rendezvous weight of a member for one arc. The arc's
// owner is the member with the highest score; ties (a vanishing 64-bit
// coincidence) break toward the lexicographically smaller name.
func arcScore(memberHash uint64, arc int) uint64 {
	return mix64(memberHash + uint64(arc)*0x9E3779B97F4A7C15)
}

// Add inserts a member and rebuilds arc ownership. Adding an existing
// member errors.
func (r *Ring) Add(member string) error {
	if member == "" {
		return fmt.Errorf("cluster: empty member name")
	}
	if r.Has(member) {
		return fmt.Errorf("cluster: member %q already on the ring", member)
	}
	r.members = append(r.members, member)
	sort.Strings(r.members)
	r.rebuild()
	return nil
}

// Remove deletes a member and rebuilds arc ownership. Removing an absent
// member errors.
func (r *Ring) Remove(member string) error {
	if !r.Has(member) {
		return fmt.Errorf("cluster: member %q not on the ring", member)
	}
	for i, m := range r.members {
		if m == member {
			r.members = append(r.members[:i], r.members[i+1:]...)
			break
		}
	}
	r.rebuild()
	return nil
}

// rebuild recomputes every arc's rendezvous winner from scratch. The
// argmax is independent of insertion order and history, which is what
// makes placement deterministic; at the default geometry this is ~8k arcs
// × N members of cheap integer mixing.
func (r *Ring) rebuild() {
	r.memberHash = r.memberHash[:0]
	for _, m := range r.members {
		r.memberHash = append(r.memberHash, nameHash(m))
	}
	if len(r.members) == 0 {
		return
	}
	for arc := range r.arcs {
		best := int32(0)
		bestScore := arcScore(r.memberHash[0], arc)
		for i := 1; i < len(r.members); i++ {
			if s := arcScore(r.memberHash[i], arc); s > bestScore {
				best, bestScore = int32(i), s
			}
		}
		r.arcs[arc] = best
	}
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	for _, m := range r.members {
		if m == member {
			return true
		}
	}
	return false
}

// Members returns the sorted member names.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning the object's arc. It panics on an empty
// ring — routing against a memberless cluster is a programming error the
// Initiator's constructor rules out.
func (r *Ring) Owner(id osd.ObjectID) string {
	if len(r.members) == 0 {
		panic("cluster: Owner on empty ring")
	}
	// Equal-width arcs: arc index is the hash scaled into [0, len(arcs)).
	arc := HashID(id) / (^uint64(0)/uint64(len(r.arcs)) + 1)
	return r.members[r.arcs[arc]]
}

// Clone returns an independent copy.
func (r *Ring) Clone() *Ring {
	return &Ring{
		vnodes:     r.vnodes,
		arcs:       append([]int32(nil), r.arcs...),
		members:    append([]string(nil), r.members...),
		memberHash: append([]uint64(nil), r.memberHash...),
	}
}
