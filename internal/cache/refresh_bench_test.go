package cache

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/backend"
	"github.com/reo-cache/reo/internal/hdd"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/store"
)

// BenchmarkReadDuringRefresh measures client read latency while a
// classification refresh is running, at a 10k-object population. The sync
// variant is the stop-the-world baseline: the refresh sorts and re-encodes
// under the cache-wide lock, so every concurrent read stalls behind it. The
// async variant runs the snapshot/partial-selection/worker-pool pipeline.
// Reported p99-ns is the 99th-percentile read latency observed while a
// refresh was in flight.
func BenchmarkReadDuringRefresh(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchReadDuringRefresh(b, false) })
	b.Run("async", func(b *testing.B) { benchReadDuringRefresh(b, true) })
}

const (
	benchRefreshObjects = 10_000
	benchRefreshObjSize = 4096
)

func newRefreshBenchManager(b *testing.B, async bool) *Manager {
	b.Helper()
	pol := policy.Reo{ParityBudget: 0.1}
	s, err := store.New(store.Config{
		Devices:          5,
		DeviceSpec:       testSpec(16 << 20),
		ChunkSize:        1024,
		Policy:           pol,
		RedundancyBudget: pol.ParityBudget,
	})
	if err != nil {
		b.Fatal(err)
	}
	be := backend.New(hdd.WD1TB(1 << 30))
	m, err := New(Config{
		Store:            s,
		Backend:          be,
		NetworkBandwidth: 1.25e9,
		NetworkRTT:       100 * time.Microsecond,
		RefreshInterval:  1 << 30, // only explicit kicks refresh
		AsyncRefresh:     async,
		ReclassWorkers:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRefreshObjects; i++ {
		if _, err := be.Put(oid(uint64(i)), randBytes(int64(i), benchRefreshObjSize)); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Read(oid(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if m.Len() != benchRefreshObjects {
		b.Fatalf("warmup admitted %d/%d objects", m.Len(), benchRefreshObjects)
	}
	return m
}

// perturbFreqs flips which half of the population is hot, so every kicked
// refresh has a real work-list to re-encode.
func perturbFreqs(m *Manager, iter int) {
	m.mu.Lock()
	for _, e := range m.entries {
		idx := int(e.id.OID - osd.FirstUserOID)
		if idx%2 == iter%2 {
			e.freq = 1000
		} else {
			e.freq = 1
		}
	}
	m.mu.Unlock()
}

func benchReadDuringRefresh(b *testing.B, async bool) {
	m := newRefreshBenchManager(b, async)
	// Open-loop load: a new read arrives every arrivalInterval regardless of
	// whether earlier reads have completed, so time a reader spends stalled
	// behind the refresh is fully represented in the latency distribution
	// (closed-loop sampling would suffer coordinated omission — a blocked
	// reader stops sampling exactly when latency is worst).
	const arrivalInterval = 200 * time.Microsecond

	var latMu sync.Mutex
	latencies := make([]time.Duration, 0, 1<<16)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		perturbFreqs(m, i)
		b.StartTimer()

		done := make(chan struct{})
		go func() {
			m.KickRefresh()
			m.WaitRefresh() // no-op in sync mode; drains the pipeline in async
			close(done)
		}()

		var wg sync.WaitGroup
		rng := rand.New(rand.NewSource(int64(i)))
		ticker := time.NewTicker(arrivalInterval)
	arrivals:
		for {
			select {
			case <-done:
				break arrivals
			case <-ticker.C:
				id := oid(uint64(rng.Intn(benchRefreshObjects)))
				wg.Add(1)
				go func(id osd.ObjectID) {
					defer wg.Done()
					rc := reqctx.Acquire(context.Background())
					start := time.Now()
					res, err := m.ReadCtx(rc, id)
					d := time.Since(start)
					reqctx.Release(rc)
					if err != nil {
						b.Error(err)
						return
					}
					res.Release()
					latMu.Lock()
					latencies = append(latencies, d)
					latMu.Unlock()
				}(id)
			}
		}
		ticker.Stop()
		wg.Wait()
	}
	b.StopTimer()

	if len(latencies) == 0 {
		b.Fatal("no reads sampled during refresh")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := (len(latencies) * 99) / 100
	if idx >= len(latencies) {
		idx = len(latencies) - 1
	}
	p99 := latencies[idx]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(latencies[len(latencies)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(len(latencies))/float64(b.N), "reads/refresh")
	if testing.Verbose() {
		fmt.Printf("  %s: %d reads sampled, p50=%v p99=%v max=%v\n",
			map[bool]string{false: "sync", true: "async"}[async],
			len(latencies), latencies[len(latencies)/2], p99, latencies[len(latencies)-1])
	}
}
