package harness

import (
	"bytes"
	"fmt"
	"time"

	"github.com/reo-cache/reo/internal/faultinject"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/metrics"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/workload"
)

// ChaosConfig schedules a chaos soak: a full-trace replay under the
// injector's fault taxonomy, with no operator intervention — detection,
// degraded service, and recovery must all happen on their own.
type ChaosConfig struct {
	// Seed drives every fault decision; the same seed replays the
	// identical fault sequence.
	Seed int64
	// TransientRate / BitFlipRate / LatentRate are per-device-op
	// probabilities (see faultinject.Plan).
	TransientRate float64
	BitFlipRate   float64
	LatentRate    float64
	// FailSlowDevice (-1 to disable) serves every op at FailSlowFactor×
	// nominal cost from device-op FailSlowFromOp onward, until the health
	// monitor takes it out of service.
	FailSlowDevice int
	FailSlowFactor float64
	FailSlowFromOp int64
	// FailStopDevice (-1 to disable) fail-stops at device-op FailStopAtOp.
	FailStopDevice int
	FailStopAtOp   int64
	// ScrubEvery runs a ScrubRepair pass every that many measured
	// requests (0 disables periodic scrubbing).
	ScrubEvery int
	// RecoveryPerRequest is how many queued objects background recovery
	// rebuilds between requests (the store queues work by itself; the
	// harness only grants it idle steps).
	RecoveryPerRequest int
	// WriteRatio is the trace's write fraction (dirty data must survive).
	WriteRatio float64
	// HedgeDelay, when positive, arms hedged degraded reads (policy class
	// read.degraded, MaxHedges 4) for the soak. Zero — the default — keeps
	// hedging off and the soak byte-identical to the pre-hedging harness.
	HedgeDelay time.Duration
}

// DefaultChaos returns the soak the acceptance criteria describe: transient
// errors and bit-flips throughout, one fail-slow device and one scheduled
// fail-stop, periodic scrub-repair, and interleaved auto recovery.
func DefaultChaos(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed:               seed,
		TransientRate:      0.002,
		BitFlipRate:        0.0005,
		LatentRate:         0.0005,
		FailSlowDevice:     1,
		FailSlowFactor:     8,
		FailSlowFromOp:     2000,
		FailStopDevice:     3,
		FailStopAtOp:       4000,
		ScrubEvery:         1000,
		RecoveryPerRequest: 4,
		WriteRatio:         0.3,
	}
}

func (c ChaosConfig) plan() faultinject.Plan {
	plan := faultinject.Plan{
		Seed:          c.Seed,
		TransientRate: c.TransientRate,
		BitFlipRate:   c.BitFlipRate,
		LatentRate:    c.LatentRate,
	}
	if c.FailSlowDevice >= 0 && c.FailSlowFactor > 1 {
		plan.FailSlow = map[int]faultinject.FailSlow{
			c.FailSlowDevice: {FromOp: c.FailSlowFromOp, Factor: c.FailSlowFactor},
		}
	}
	if c.FailStopDevice >= 0 {
		plan.FailStop = map[int]int64{c.FailStopDevice: c.FailStopAtOp}
	}
	return plan
}

// ChaosResult aggregates a chaos soak.
type ChaosResult struct {
	Run *RunResult
	// Faults is what the injector actually delivered.
	Faults faultinject.Counters
	// Store is the defense side: repairs, re-encodes, auto recoveries.
	Store store.FaultStats
	// Health snapshots every device slot at the end of the soak.
	Health []flash.Health
	// ScrubPasses counts periodic scrub-repair passes.
	ScrubPasses int
	// Verified counts objects whose final content matched the expected
	// last-acknowledged version in the post-soak integrity sweep (every
	// live object is checked; a mismatch fails the run instead).
	Verified int
	// Hedge is the hedged-read lifecycle tally (all zero unless
	// ChaosConfig.HedgeDelay armed hedging).
	Hedge policy.HedgeStats
}

// ChaosRun replays a synthesized trace (with writes) through a Reo system
// while the fault injector fires, then sweeps every object end to end. It
// fails if any read returns wrong bytes — during the soak (VerifyPayloads)
// or in the final sweep, which also proves no acknowledged dirty write was
// lost. Recovery must start by itself: the harness never calls InsertSpare
// or StartRecovery.
//
// Determinism: the replay is serial, injector decisions are pure functions
// of (seed, device, op-index), and recovery/scrub interleave at fixed
// request boundaries — the same seed replays the identical run.
func ChaosRun(loc workload.Locality, opts Options, chaos ChaosConfig) (*ChaosResult, error) {
	opts.applyDefaults()
	tr, err := opts.traceFor(loc, chaos.WriteRatio)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(opts.systemConfig(SystemConfig{
		Policy:             policy.Reo{ParityBudget: 0.20},
		CacheBytes:         tr.DatasetBytes / 10,
		ChunkSize:          opts.chunk(64 << 10),
		MetadataObjectSize: opts.metadataSize(),
		AutoRecover:        true,
	}), tr)
	if err != nil {
		return nil, err
	}
	if chaos.HedgeDelay > 0 {
		rule := policy.DefaultRule(policy.OpReadDegraded)
		rule.Hedge = policy.HedgeRule{Delay: chaos.HedgeDelay, MaxHedges: 4}
		sys.Store.Resilience().SetRule(policy.OpReadDegraded, rule)
	}

	// Warm the cache fault-free so the soak hits a populated steady state.
	// The warmup twin is read-only: same seed means identical object sizes
	// and payloads, but every read sees version 0, so the measured pass's
	// per-request version expectations stay in sync with its own writes.
	warmupTr, err := opts.traceFor(loc, 0)
	if err != nil {
		return nil, err
	}
	if err := replay(sys, warmupTr, RunConfig{}, nil); err != nil {
		return nil, fmt.Errorf("chaos warmup: %w", err)
	}

	inj, err := faultinject.New(chaos.plan())
	if err != nil {
		return nil, err
	}
	inj.Attach(sys.Store.Array())

	out := &ChaosResult{}
	cfg := RunConfig{
		RecoveryObjectsPerRequest: chaos.RecoveryPerRequest,
		VerifyPayloads:            true,
		OpStats:                   opts.OpStats,
	}
	if chaos.ScrubEvery > 0 {
		cfg.OnRequest = func(i int) (time.Duration, error) {
			if i == 0 || i%chaos.ScrubEvery != 0 {
				return 0, nil
			}
			_, cost, err := sys.Store.ScrubRepair()
			if err != nil {
				return cost, err
			}
			out.ScrubPasses++
			if opts.OpStats != nil {
				opts.OpStats.Record("repair.scrub", cost)
			}
			return cost, nil
		}
	}
	res := &RunResult{Policy: sys.Store.Policy().Name(), RecoveryDoneRequest: -1}
	if err := replay(sys, tr, cfg, res); err != nil {
		return nil, fmt.Errorf("chaos replay: %w", err)
	}
	res.SpaceEfficiency = sys.Store.SpaceEfficiency()
	out.Run = res

	// The storm is over: detach the injector and audit the survivors. Every
	// object must read back its last acknowledged version — dirty data from
	// flash, clean data from flash or the backend.
	faultinject.Detach(sys.Store.Array())
	last := make([]int, len(tr.Sizes))
	for _, req := range tr.Requests {
		if req.Write {
			last[req.Object] = req.Version
		}
	}
	for obj := range tr.Sizes {
		result, err := sys.Cache.Read(objectID(obj))
		if err != nil {
			return nil, fmt.Errorf("post-chaos sweep: object %d: %w", obj, err)
		}
		want := Payload(tr, obj, last[obj])
		match := bytes.Equal(result.Data, want)
		result.Release()
		if !match {
			return nil, fmt.Errorf("post-chaos sweep: object %d: content mismatch at version %d (acknowledged data lost)",
				obj, last[obj])
		}
		sys.Clock.Advance(result.Latency + result.Background)
		out.Verified++
	}

	out.Faults = inj.Counters()
	out.Store = sys.Store.FaultStats()
	out.Hedge = sys.Store.Resilience().HedgeStats()
	arr := sys.Store.Array()
	for i := 0; i < arr.N(); i++ {
		out.Health = append(out.Health, arr.Device(i).Health())
	}
	if opts.OpStats != nil {
		recordChaosGauges(opts.OpStats, out)
	}
	return out, nil
}

// recordChaosGauges exposes the fault/repair/retry/health counters through
// the -opstats report.
func recordChaosGauges(h *metrics.OpHistogram, out *ChaosResult) {
	h.SetGauge("fault.transient", float64(out.Faults.Transient))
	h.SetGauge("fault.bitflip", float64(out.Faults.BitFlips))
	h.SetGauge("fault.latent", float64(out.Faults.Latent))
	h.SetGauge("fault.failslow_ops", float64(out.Faults.FailSlow))
	h.SetGauge("fault.failstop", float64(out.Faults.FailStops))
	var retries, exhausted int64
	suspect, failed := 0, 0
	for _, dh := range out.Health {
		retries += dh.Retries
		exhausted += dh.RetriesExhausted
		switch dh.State {
		case flash.StateSuspect:
			suspect++
		case flash.StateFailed:
			failed++
		}
	}
	h.SetGauge("retry.attempts", float64(retries))
	h.SetGauge("retry.exhausted", float64(exhausted))
	h.SetGauge("repair.chunks", float64(out.Store.RepairedChunks))
	h.SetGauge("repair.scrub_repaired", float64(out.Store.ScrubRepaired))
	h.SetGauge("repair.scrub_invalidated", float64(out.Store.ScrubInvalidated))
	h.SetGauge("repair.reencoded", float64(out.Store.Reencoded))
	h.SetGauge("device.health.suspect", float64(suspect))
	h.SetGauge("device.health.failed", float64(failed))
	h.SetGauge("recovery.auto_starts", float64(out.Store.AutoRecoveries))
	recordHedgeGauges(h, out.Hedge)
}
