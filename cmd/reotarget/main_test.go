package main

import (
	"testing"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"4096", 4096, false},
		{"64KiB", 64 << 10, false},
		{"128MiB", 128 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2KB", 2000, false},
		{"3MB", 3e6, false},
		{"1GB", 1e9, false},
		{"16B", 16, false},
		{" 8KiB ", 8 << 10, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-5MiB", 0, true},
		{"0", 0, true},
	}
	for _, tc := range tests {
		got, err := parseSize(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseSize(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		in         string
		wantName   string
		wantBudget float64
		wantErr    bool
	}{
		{"reo-10", "Reo-10%", 0.10, false},
		{"reo-20", "Reo-20%", 0.20, false},
		{"REO-40", "Reo-40%", 0.40, false},
		{"0-parity", "0-parity", 0, false},
		{"1-parity", "1-parity", 0, false},
		{"2-parity", "2-parity", 0, false},
		{"full-replication", "full-replication", 0, false},
		{"raid6", "", 0, true},
	}
	for _, tc := range tests {
		pol, budget, err := parsePolicy(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parsePolicy(%q) err = %v", tc.in, err)
			continue
		}
		if err != nil {
			continue
		}
		if pol.Name() != tc.wantName || budget != tc.wantBudget {
			t.Errorf("parsePolicy(%q) = %s/%v, want %s/%v", tc.in, pol.Name(), budget, tc.wantName, tc.wantBudget)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-capacity", "nonsense"}); err == nil {
		t.Fatal("bad capacity accepted")
	}
	if err := run([]string{"-chunk", "-1"}); err == nil {
		t.Fatal("bad chunk accepted")
	}
	if err := run([]string{"-policy", "raid6"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-listen", "999.999.999.999:0"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
