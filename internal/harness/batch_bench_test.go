package harness

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/reo-cache/reo/internal/cluster"
	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/target"
	"github.com/reo-cache/reo/internal/transport"
)

// BenchmarkBatchThroughput measures vectored read throughput over the three
// deployment shapes — in-process store, remote target over loopback TCP, and
// a 3-shard cluster of remote targets — at batch sizes 1, 8, and 64 with a
// fixed worker count. One benchmark iteration is one object read, so ns/op
// compares directly across batch sizes; batch 1 rides the single-op PDU path
// (a batch of one is byte-identical on the wire), making batch1 -> batch64
// the per-op fixed-cost amortisation the tiny-object regime buys. CI's
// bench-smoke step runs this at low -benchtime as a build-rot check.
func BenchmarkBatchThroughput(b *testing.B) {
	const (
		objects = 512
		objSize = 512
		workers = 4
	)

	newBenchStore := func(b *testing.B) *store.Store {
		b.Helper()
		st, err := store.New(store.Config{
			Devices:          5,
			DeviceSpec:       flash.Intel540s(8 << 20),
			ChunkSize:        4 << 10,
			Policy:           policy.Reo{ParityBudget: 0.4},
			RedundancyBudget: 0.4,
		})
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, objSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		for n := uint64(0); n < objects; n++ {
			id := osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID + n}
			if _, err := st.Put(id, payload, osd.ClassColdClean, false); err != nil {
				b.Fatal(err)
			}
		}
		return st
	}
	serveRemote := func(b *testing.B, st *store.Store) target.Target {
		b.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := transport.NewServer(st, ln)
		b.Cleanup(func() { _ = srv.Close() })
		rt, err := transport.DialRemoteTargetPool(ln.Addr().String(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = rt.Close() })
		return rt
	}

	topologies := []struct {
		name  string
		build func(b *testing.B) target.Target
	}{
		{"local", func(b *testing.B) target.Target { return newBenchStore(b) }},
		{"remote", func(b *testing.B) target.Target { return serveRemote(b, newBenchStore(b)) }},
		{"cluster", func(b *testing.B) target.Target {
			shards := make([]cluster.Shard, 3)
			for i := range shards {
				shards[i] = cluster.Shard{Name: fmt.Sprintf("shard-%d", i), Target: serveRemote(b, newBenchStore(b))}
			}
			ini, err := cluster.New(cluster.Config{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			return ini
		}},
	}

	for _, topo := range topologies {
		for _, batchN := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/batch%d", topo.name, batchN), func(b *testing.B) {
				tgt := topo.build(b)
				b.SetBytes(objSize)
				b.ResetTimer()
				var (
					next  atomic.Int64
					wg    sync.WaitGroup
					errCh = make(chan error, workers)
				)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						ids := make([]osd.ObjectID, 0, batchN)
						for {
							base := next.Add(int64(batchN)) - int64(batchN)
							if base >= int64(b.N) {
								return
							}
							end := base + int64(batchN)
							if end > int64(b.N) {
								end = int64(b.N)
							}
							ids = ids[:0]
							for i := base; i < end; i++ {
								ids = append(ids, osd.ObjectID{
									PID: osd.FirstPID, OID: osd.FirstUserOID + uint64(i)%objects,
								})
							}
							for j, r := range target.GetBatch(tgt, nil, ids) {
								if r.Err != nil {
									errCh <- fmt.Errorf("sub-op %d: %w", j, r.Err)
									return
								}
								r.Release()
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errCh:
					b.Fatal(err)
				default:
				}
			})
		}
	}
}
