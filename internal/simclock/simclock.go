// Package simclock provides the virtual clock that drives Reo's simulated
// storage stack. Devices and the harness charge durations to the clock
// instead of sleeping, which makes experiments deterministic and lets a
// multi-hour trace replay finish in seconds while still producing bandwidth
// (bytes / virtual second) and latency (virtual time per request) numbers.
//
// Concurrency within a single request (e.g. reading a stripe's chunks from
// several devices at once) is modelled by combining per-device costs with
// Parallel and charging only the critical path.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is ready
// to use and starts at zero virtual time. It is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored so
// that a cost model returning zero/negative cost can never move time
// backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Reset rewinds the clock to zero. Intended for test reuse.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Parallel returns the critical path of operations that run concurrently:
// the maximum of the given durations.
func Parallel(ds ...time.Duration) time.Duration {
	var out time.Duration
	for _, d := range ds {
		if d > out {
			out = d
		}
	}
	return out
}

// Serial returns the total of operations that run back to back.
func Serial(ds ...time.Duration) time.Duration {
	var out time.Duration
	for _, d := range ds {
		if d > 0 {
			out += d
		}
	}
	return out
}

// TransferTime returns the time to move n bytes at the given bandwidth
// (bytes per second). A non-positive bandwidth yields zero, so unset models
// never block progress.
func TransferTime(n int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// Bandwidth returns bytes/elapsed in MB/s (decimal megabytes, matching the
// paper's MB/sec axes). It returns 0 when elapsed is zero.
func Bandwidth(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e6
}

// FormatMBps renders a bandwidth value the way the harness tables print it.
func FormatMBps(v float64) string { return fmt.Sprintf("%.1f MB/s", v) }
