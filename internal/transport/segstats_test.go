package transport

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/store"
)

func TestSegStatsCodecRoundTrip(t *testing.T) {
	in := []flash.SegmentStats{
		{
			Layout: flash.LayoutLog, State: flash.StateHealthy,
			CapacityBytes: 4 << 20, SegmentBytes: 64 << 10, Segments: 7,
			OpenFill: 1234, LiveBytes: 100_000, GarbageBytes: 5_000,
			BytesWritten: 250_000, GCBytesWritten: 30_000,
			TombstonedBytes: 35_000, SegmentErases: 3, WearCycles: 0.0625,
		},
		{Layout: flash.LayoutInPlace, State: flash.StateFailed, CapacityBytes: 1 << 20},
	}
	out, err := decodeSegStats(encodeSegStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := decodeSegStats(make([]byte, segStatsEntrySize+1)); err == nil {
		t.Fatal("misaligned payload accepted")
	}
}

// TestSegStatsAndTuneOverWire drives the new ops end to end: a log-layout
// target serves OpSegStats snapshots, and a #TUNE# control message adjusts
// its GC thresholds.
func TestSegStatsAndTuneOverWire(t *testing.T) {
	st, err := store.New(store.Config{
		Devices: 3,
		DeviceSpec: flash.Spec{
			CapacityBytes:  1 << 20,
			ReadBandwidth:  500e6,
			WriteBandwidth: 400e6,
			ReadLatency:    50 * time.Microsecond,
			WriteLatency:   60 * time.Microsecond,
		},
		ChunkSize: 1024,
		Policy:    policy.Uniform{ParityChunks: 0},
		Layout:    flash.LayoutLog,
		LogConfig: flash.LogConfig{SegmentBytes: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ln)
	t.Cleanup(func() { _ = srv.Close() })
	a, b := net.Pipe()
	go srv.HandleConn(b)
	client := NewClient(a)
	t.Cleanup(func() { _ = client.Close() })

	payload := bytes.Repeat([]byte{0xab}, 3000)
	id := osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID + 1}
	if _, err := client.Put(id, payload, osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	stats, err := client.SegStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d device entries, want 3", len(stats))
	}
	var live int64
	for i, ds := range stats {
		if ds.Layout != flash.LayoutLog {
			t.Fatalf("device %d layout %v, want log", i, ds.Layout)
		}
		if ds.SegmentBytes != 16<<10 {
			t.Fatalf("device %d segment bytes %d", i, ds.SegmentBytes)
		}
		live += ds.LiveBytes
	}
	if live < int64(len(payload)) {
		t.Fatalf("array live bytes %d < payload %d", live, len(payload))
	}

	if err := client.Tune("gc.trigger", 0.42); err != nil {
		t.Fatal(err)
	}
	trigger, _ := st.Array().Device(0).GCThresholds()
	if math.Abs(trigger-0.42) > 1e-9 {
		t.Fatalf("gc.trigger = %v after tune, want 0.42", trigger)
	}
	if err := client.Tune("gc.bogus", 0.5); err == nil {
		t.Fatal("unknown tune key accepted")
	}
	if err := client.Tune("gc.target", 1.5); err == nil {
		t.Fatal("out-of-range tune value accepted")
	}
}
