// Package transport implements the initiator↔target wire protocol that
// stands in for the paper's iSCSI transport (§II.A, §V): the cache manager
// (initiator) talks to the object storage target over a stream connection
// using length-prefixed binary PDUs. The protocol carries object IO (put,
// get, delete), the control-object writes (#SETID#/#QUERY# messages,
// answered with Table III sense codes), and the administrative operations
// the paper's evaluation scripts perform out of band (device shootdown,
// spare insertion, recovery stepping).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/reo-cache/reo/internal/osd"
)

// Op identifies a request type.
type Op byte

// Protocol operations.
const (
	OpPut Op = iota + 1
	OpGet
	OpDelete
	OpControl
	OpStatus
	OpStats
	OpFailDevice
	OpInsertSpare
	OpRecoverStep
	OpMarkClean
	OpReclassify
	OpPolicy
	OpWriteRange
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpControl:
		return "control"
	case OpStatus:
		return "status"
	case OpStats:
		return "stats"
	case OpFailDevice:
		return "fail-device"
	case OpInsertSpare:
		return "insert-spare"
	case OpRecoverStep:
		return "recover-step"
	case OpMarkClean:
		return "mark-clean"
	case OpReclassify:
		return "reclassify"
	case OpPolicy:
		return "policy"
	case OpWriteRange:
		return "write-range"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// maxPDUSize bounds a frame to keep a malformed peer from ballooning
// memory.
const maxPDUSize = 256 << 20

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	ErrShortFrame    = errors.New("transport: frame too short for its op")
	ErrUnknownOp     = errors.New("transport: unknown opcode")
)

// Request is a decoded request PDU.
type Request struct {
	Op     Op
	Object osd.ObjectID
	// Class and Dirty apply to OpPut.
	Class osd.Class
	Dirty bool
	// Payload is the object content (OpPut) or raw control message
	// (OpControl).
	Payload []byte
	// Index is the device slot (OpFailDevice/OpInsertSpare) or the step
	// budget (OpRecoverStep).
	Index int32
	// Offset is the byte offset for OpWriteRange.
	Offset int64
	// RequestID and Deadline carry the request lifecycle across the wire:
	// the initiator's trace ID, and an absolute deadline as Unix nanoseconds
	// (0 = no deadline). The target rebuilds its per-request context from
	// them and enforces the deadline server-side.
	RequestID uint64
	Deadline  int64
}

// Response is a decoded response PDU.
type Response struct {
	// RequestID echoes the request's RequestID so a multiplexed initiator
	// can match out-of-order responses back to their callers. Responses to
	// frames whose request could not even be decoded carry 0.
	RequestID uint64
	// Sense is the Table III status.
	Sense osd.SenseCode
	// Message carries an error description when Sense != SenseOK.
	Message string
	// Degraded applies to OpGet.
	Degraded bool
	// Payload is the object content (OpGet).
	Payload []byte
	// Status is the object status (OpStatus); Value carries op-specific
	// counters (queued objects, rebuilt objects, ...).
	Status int32
	Value  int64
	// Done applies to OpRecoverStep.
	Done bool
	// Cost is the virtual-time cost the target charged (reported so the
	// initiator can account it on its own clock).
	Cost time.Duration
	// Stats applies to OpStats.
	Stats StatsBody
}

// StatsBody is the OpStats response payload.
type StatsBody struct {
	Objects         int64
	UsedBytes       int64
	RawCapacity     int64
	SpaceEfficiency float64
	AliveDevices    int32
	TotalDevices    int32
	RecoveryActive  bool
	RecoveryQueue   int32
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxPDUSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxPDUSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// EncodeRequest renders a request PDU body.
func EncodeRequest(req Request) []byte {
	buf := make([]byte, 0, 52+len(req.Payload))
	buf = append(buf, byte(req.Op))
	buf = binary.BigEndian.AppendUint64(buf, req.Object.PID)
	buf = binary.BigEndian.AppendUint64(buf, req.Object.OID)
	buf = append(buf, byte(req.Class))
	buf = append(buf, boolByte(req.Dirty))
	buf = binary.BigEndian.AppendUint32(buf, uint32(req.Index))
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Offset))
	buf = binary.BigEndian.AppendUint64(buf, req.RequestID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Deadline))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(req.Payload)))
	buf = append(buf, req.Payload...)
	return buf
}

// DecodeRequest parses a request PDU body.
func DecodeRequest(body []byte) (Request, error) {
	const fixed = 1 + 8 + 8 + 1 + 1 + 4 + 8 + 8 + 8 + 4
	if len(body) < fixed {
		return Request{}, ErrShortFrame
	}
	op := Op(body[0])
	if op < OpPut || op > OpWriteRange {
		return Request{}, fmt.Errorf("%w: %d", ErrUnknownOp, body[0])
	}
	req := Request{
		Op: op,
		Object: osd.ObjectID{
			PID: binary.BigEndian.Uint64(body[1:9]),
			OID: binary.BigEndian.Uint64(body[9:17]),
		},
		Class:     osd.Class(body[17]),
		Dirty:     body[18] != 0,
		Index:     int32(binary.BigEndian.Uint32(body[19:23])),
		Offset:    int64(binary.BigEndian.Uint64(body[23:31])),
		RequestID: binary.BigEndian.Uint64(body[31:39]),
		Deadline:  int64(binary.BigEndian.Uint64(body[39:47])),
	}
	payloadLen := binary.BigEndian.Uint32(body[47:51])
	if int(payloadLen) != len(body)-fixed {
		return Request{}, fmt.Errorf("%w: payload length %d, frame remainder %d",
			ErrShortFrame, payloadLen, len(body)-fixed)
	}
	if payloadLen > 0 {
		req.Payload = make([]byte, payloadLen)
		copy(req.Payload, body[fixed:])
	}
	return req, nil
}

// EncodeResponse renders a response PDU body.
func EncodeResponse(resp Response) []byte {
	msg := []byte(resp.Message)
	buf := make([]byte, 0, 88+len(msg)+len(resp.Payload))
	buf = binary.BigEndian.AppendUint64(buf, resp.RequestID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(resp.Sense)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	buf = append(buf, boolByte(resp.Degraded), boolByte(resp.Done))
	buf = binary.BigEndian.AppendUint32(buf, uint32(resp.Status))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Value))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Cost))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Stats.Objects))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Stats.UsedBytes))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Stats.RawCapacity))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(resp.Stats.SpaceEfficiency))
	buf = binary.BigEndian.AppendUint32(buf, uint32(resp.Stats.AliveDevices))
	buf = binary.BigEndian.AppendUint32(buf, uint32(resp.Stats.TotalDevices))
	buf = append(buf, boolByte(resp.Stats.RecoveryActive))
	buf = binary.BigEndian.AppendUint32(buf, uint32(resp.Stats.RecoveryQueue))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(resp.Payload)))
	buf = append(buf, resp.Payload...)
	return buf
}

// DecodeResponse parses a response PDU body.
func DecodeResponse(body []byte) (Response, error) {
	if len(body) < 14 {
		return Response{}, ErrShortFrame
	}
	resp := Response{
		RequestID: binary.BigEndian.Uint64(body[0:8]),
		Sense:     osd.SenseCode(int32(binary.BigEndian.Uint32(body[8:12]))),
	}
	msgLen := int(binary.BigEndian.Uint16(body[12:14]))
	rest := body[14:]
	if len(rest) < msgLen {
		return Response{}, ErrShortFrame
	}
	resp.Message = string(rest[:msgLen])
	rest = rest[msgLen:]
	const fixed = 1 + 1 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 1 + 4 + 4
	if len(rest) < fixed {
		return Response{}, ErrShortFrame
	}
	resp.Degraded = rest[0] != 0
	resp.Done = rest[1] != 0
	resp.Status = int32(binary.BigEndian.Uint32(rest[2:6]))
	resp.Value = int64(binary.BigEndian.Uint64(rest[6:14]))
	resp.Cost = time.Duration(binary.BigEndian.Uint64(rest[14:22]))
	resp.Stats.Objects = int64(binary.BigEndian.Uint64(rest[22:30]))
	resp.Stats.UsedBytes = int64(binary.BigEndian.Uint64(rest[30:38]))
	resp.Stats.RawCapacity = int64(binary.BigEndian.Uint64(rest[38:46]))
	resp.Stats.SpaceEfficiency = math.Float64frombits(binary.BigEndian.Uint64(rest[46:54]))
	resp.Stats.AliveDevices = int32(binary.BigEndian.Uint32(rest[54:58]))
	resp.Stats.TotalDevices = int32(binary.BigEndian.Uint32(rest[58:62]))
	resp.Stats.RecoveryActive = rest[62] != 0
	resp.Stats.RecoveryQueue = int32(binary.BigEndian.Uint32(rest[63:67]))
	payloadLen := binary.BigEndian.Uint32(rest[67:71])
	rest = rest[71:]
	if int(payloadLen) != len(rest) {
		return Response{}, fmt.Errorf("%w: payload length %d, remainder %d",
			ErrShortFrame, payloadLen, len(rest))
	}
	if payloadLen > 0 {
		resp.Payload = make([]byte, payloadLen)
		copy(resp.Payload, rest)
	}
	return resp, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
