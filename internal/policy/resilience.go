package policy

// The resilience side of the policy layer: a registry of per-op-class
// failure-handling rules (retry schedule, timeout, hedging, retry budget)
// that the flash retry loops, the transport redial loop, and the store's
// degraded-read path consult instead of their own hardcoded constants.
//
// The registry's defaults reproduce those constants exactly — 4 attempts /
// 50µs..2ms ±25% for device IO, unbounded 5ms..1s ±25% for redial — so a
// system that never tunes a rule is byte-identical to one built before the
// registry existed. Hedging and budgets are strictly opt-in: the zero
// HedgeRule and BudgetRule disable them.
//
// Every method is nil-safe on the receiver: a nil *Resilience behaves as the
// default registry with hedging off, so layers that predate the control
// plane (or tests that build a bare Device) need no wiring.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// OpClass is a low-cardinality operation class: the key the resilience
// registry is indexed by. Classes travel with the request (reqctx carries
// one) so the device layer can look up the rule for the work it is doing.
type OpClass uint8

const (
	// OpDefault is the class of untagged work.
	OpDefault OpClass = iota
	// OpReadHit is a read served from intact stripes.
	OpReadHit
	// OpReadDegraded is a read that may need reconstruction (device lost or
	// suspect) — the class hedged reads key off.
	OpReadDegraded
	// OpWriteDirty is a write-back dirty write on the request path.
	OpWriteDirty
	// OpWriteFlush is a background flush of dirty data to the backend.
	OpWriteFlush
	// OpRecoverBG is background differentiated recovery (rebuild queue).
	OpRecoverBG
	// OpScrubBG is a background scrub / scrub-repair pass.
	OpScrubBG
	// OpWireDial is transport-level redial of a dead pooled connection.
	OpWireDial

	// NumOpClasses bounds the registry arrays.
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	OpDefault:      "default",
	OpReadHit:      "read.hit",
	OpReadDegraded: "read.degraded",
	OpWriteDirty:   "write.dirty",
	OpWriteFlush:   "write.flush",
	OpRecoverBG:    "recover.bg",
	OpScrubBG:      "scrub.bg",
	OpWireDial:     "wire.dial",
}

// String returns the canonical dotted class name ("read.degraded").
func (c OpClass) String() string {
	if c < NumOpClasses {
		return opClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseOpClass resolves a dotted class name to its OpClass.
func ParseOpClass(name string) (OpClass, error) {
	for c, n := range opClassNames {
		if n == name {
			return OpClass(c), nil
		}
	}
	return OpDefault, fmt.Errorf("policy: unknown op class %q", name)
}

// OpClasses lists every class in registry order.
func OpClasses() []OpClass {
	out := make([]OpClass, NumOpClasses)
	for i := range out {
		out[i] = OpClass(i)
	}
	return out
}

// RetryRule schedules retries of a transiently failing operation.
type RetryRule struct {
	// MaxAttempts bounds total tries (first attempt included); <= 0 means
	// unbounded (the redial loop's semantics).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each delay over [delay*(1-J), delay*(1+J)).
	Jitter float64
}

// BackoffDelay returns the jittered delay before retry number attempt
// (0-based: the delay between attempt N and attempt N+1). h is a caller-
// supplied hash that makes the jitter deterministic per (site, attempt).
func (r RetryRule) BackoffDelay(attempt int, h uint64) time.Duration {
	delay := r.BaseBackoff
	if delay <= 0 {
		return 0
	}
	// Doubling loop rather than a shift: attempt is unbounded for the
	// redial class and a shift would overflow past attempt 62.
	for i := 0; i < attempt && delay < r.MaxBackoff; i++ {
		delay *= 2
	}
	if r.MaxBackoff > 0 && delay > r.MaxBackoff {
		delay = r.MaxBackoff
	}
	j := r.Jitter
	if j <= 0 {
		return delay
	}
	if j > 1 {
		j = 1
	}
	// Deterministic jitter in [delay*(1-j), delay*(1+j)). At the default
	// j=0.25 this is bit-identical to the legacy integer formula
	// delay*3/4 + h%delay/2 (both addends are exact in float64 and
	// truncate the same way).
	mod := float64(h % uint64(delay))
	return time.Duration(float64(delay)*(1-j)) + time.Duration(mod*2*j)
}

// HedgeRule configures hedged (raced) reads for a class. The zero value
// disables hedging.
type HedgeRule struct {
	// Delay is a fixed wait before firing the hedge (first-success wins).
	Delay time.Duration
	// DelayQuantile, when Delay is zero, derives the wait from the class's
	// observed latency digest (0.95 → hedge at ~p95). Needs a minimum
	// number of samples before it engages.
	DelayQuantile float64
	// MaxHedges bounds concurrent in-flight hedges; 0 disables hedging.
	MaxHedges int
}

// Enabled reports whether the rule can ever fire a hedge.
func (h HedgeRule) Enabled() bool {
	return h.MaxHedges > 0 && (h.Delay > 0 || h.DelayQuantile > 0)
}

// BudgetRule is a token-bucket retry budget: retries for the class drain
// tokens refilled at Rate per second, so a fault storm cannot amplify
// offered load without bound. Rate <= 0 means unlimited (the default).
type BudgetRule struct {
	Rate  float64
	Burst float64
}

// Rule is one op class's complete resilience configuration.
type Rule struct {
	Retry RetryRule
	// Timeout, when positive, attaches a deadline to ops of this class that
	// do not already carry a tighter one.
	Timeout time.Duration
	Hedge   HedgeRule
	Budget  BudgetRule
}

// Device-IO retry defaults: identical to the constants that used to live in
// internal/flash (maxIOAttempts / retryBaseDelay / retryMaxDelay, ±25%).
var defaultIORetry = RetryRule{
	MaxAttempts: 4,
	BaseBackoff: 50 * time.Microsecond,
	MaxBackoff:  2 * time.Millisecond,
	Jitter:      0.25,
}

// Redial defaults: identical to internal/transport's redialBaseDelay /
// redialMaxDelay with unbounded attempts.
var defaultDialRetry = RetryRule{
	MaxAttempts: 0,
	BaseBackoff: 5 * time.Millisecond,
	MaxBackoff:  1 * time.Second,
	Jitter:      0.25,
}

// DefaultRule returns the built-in rule for a class — what a nil registry
// serves and what NewResilience seeds.
func DefaultRule(class OpClass) Rule {
	if class == OpWireDial {
		return Rule{Retry: defaultDialRetry}
	}
	return Rule{Retry: defaultIORetry}
}

// AttemptOutcome classifies one attempt for the per-attempt timeline.
type AttemptOutcome uint8

const (
	OutcomeOK        AttemptOutcome = iota // attempt succeeded
	OutcomeTransient                       // transient error, retryable
	OutcomeError                           // hard error, not retryable
	OutcomeCancelled                       // caller cancelled mid-backoff
	OutcomeDenied                          // retry budget exhausted
)

func (o AttemptOutcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeTransient:
		return "transient"
	case OutcomeError:
		return "error"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeDenied:
		return "denied"
	}
	return "unknown"
}

// Attempt is one entry of the structured per-attempt timeline: op class →
// attempt number → outcome → latency. Observers (the metrics registry)
// subscribe via SetObserver.
type Attempt struct {
	Class   OpClass
	Attempt int
	Outcome AttemptOutcome
	Latency time.Duration
}

// HedgeStats counts hedge lifecycle events across the registry.
type HedgeStats struct {
	// Fired counts hedges actually launched after the delay elapsed.
	Fired int64
	// Won counts hedges whose result beat the primary.
	Won int64
	// Cancelled counts losing hedges cancelled after the primary won.
	Cancelled int64
	// Suppressed counts hedges skipped by the MaxHedges gate.
	Suppressed int64
}

// latencyDigest is a lock-free log2 histogram of observed attempt latencies,
// feeding quantile-based hedge delays. Buckets are powers of two of 1µs.
const (
	digestBuckets    = 40
	digestMinSamples = 32
)

type latencyDigest struct {
	counts [digestBuckets]atomic.Int64
	total  atomic.Int64
}

func (d *latencyDigest) observe(lat time.Duration) {
	b := 0
	for v := lat.Microseconds(); v > 1 && b < digestBuckets-1; v >>= 1 {
		b++
	}
	d.counts[b].Add(1)
	d.total.Add(1)
}

// quantile returns the bucket upper edge at q, or (0, false) before
// digestMinSamples observations.
func (d *latencyDigest) quantile(q float64) (time.Duration, bool) {
	total := d.total.Load()
	if total < digestMinSamples {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < digestBuckets; b++ {
		seen += d.counts[b].Load()
		if seen >= rank {
			// Bucket b holds [2^b, 2^(b+1)) µs; report the upper edge.
			return time.Duration(1<<uint(b+1)) * time.Microsecond, true
		}
	}
	return time.Duration(1<<uint(digestBuckets)) * time.Microsecond, true
}

// tokenBucket implements BudgetRule on the wall clock.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *tokenBucket) allow(rule BudgetRule, now time.Time) bool {
	burst := rule.Burst
	if burst < 1 {
		burst = math.Max(1, rule.Rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else {
		b.tokens = math.Min(burst, b.tokens+rule.Rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Resilience is the per-op-class rule registry. Reads are lock-free
// (atomic rule pointers); updates copy-on-write, so a live system can be
// retuned mid-request without a barrier.
type Resilience struct {
	rules    [NumOpClasses]atomic.Pointer[Rule]
	buckets  [NumOpClasses]tokenBucket
	digests  [NumOpClasses]latencyDigest
	inFlight [NumOpClasses]atomic.Int64

	fired      atomic.Int64
	won        atomic.Int64
	cancelled  atomic.Int64
	suppressed atomic.Int64

	observer atomic.Pointer[func(Attempt)]
}

// NewResilience returns a registry seeded with the defaults (every class
// byte-identical to the pre-registry constants; hedging and budgets off).
func NewResilience() *Resilience {
	r := &Resilience{}
	for c := OpClass(0); c < NumOpClasses; c++ {
		rule := DefaultRule(c)
		r.rules[c].Store(&rule)
	}
	return r
}

// Rule returns the current rule for a class. Nil-safe: a nil registry (or an
// out-of-range class) serves the defaults.
func (r *Resilience) Rule(class OpClass) Rule {
	if class >= NumOpClasses {
		class = OpDefault
	}
	if r == nil {
		return DefaultRule(class)
	}
	if p := r.rules[class].Load(); p != nil {
		return *p
	}
	return DefaultRule(class)
}

// SetRule replaces a class's rule wholesale.
func (r *Resilience) SetRule(class OpClass, rule Rule) {
	if r == nil || class >= NumOpClasses {
		return
	}
	r.rules[class].Store(&rule)
}

// AllowRetry consults the class's retry budget. Unlimited (Rate <= 0, the
// default) always allows; a drained bucket denies and the caller gives up
// as if attempts were exhausted.
func (r *Resilience) AllowRetry(class OpClass) bool {
	if r == nil {
		return true
	}
	if class >= NumOpClasses {
		class = OpDefault
	}
	rule := r.Rule(class).Budget
	if rule.Rate <= 0 {
		return true
	}
	return r.buckets[class].allow(rule, time.Now())
}

// ObserveAttempt records one attempt: successful latencies feed the class's
// quantile digest, and every outcome is forwarded to the observer for the
// structured timeline.
func (r *Resilience) ObserveAttempt(class OpClass, attempt int, outcome AttemptOutcome, latency time.Duration) {
	if r == nil {
		return
	}
	if class >= NumOpClasses {
		class = OpDefault
	}
	if outcome == OutcomeOK {
		r.digests[class].observe(latency)
	}
	if obs := r.observer.Load(); obs != nil {
		(*obs)(Attempt{Class: class, Attempt: attempt, Outcome: outcome, Latency: latency})
	}
}

// SetObserver installs the per-attempt timeline sink (nil clears it). The
// harness points this at the metrics registry.
func (r *Resilience) SetObserver(fn func(Attempt)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.observer.Store(nil)
		return
	}
	r.observer.Store(&fn)
}

// HedgeDelay resolves the class's hedge delay: the fixed delay if set,
// otherwise the observed latency quantile once enough samples exist.
// ok is false when hedging is disabled or the quantile is not yet trusted.
func (r *Resilience) HedgeDelay(class OpClass) (time.Duration, bool) {
	if r == nil {
		return 0, false
	}
	if class >= NumOpClasses {
		class = OpDefault
	}
	h := r.Rule(class).Hedge
	if h.MaxHedges <= 0 {
		return 0, false
	}
	if h.Delay > 0 {
		return h.Delay, true
	}
	if h.DelayQuantile > 0 {
		return r.digests[class].quantile(h.DelayQuantile)
	}
	return 0, false
}

// TryStartHedge claims a hedge slot under the class's MaxHedges gate.
// A denied claim is counted as suppressed.
func (r *Resilience) TryStartHedge(class OpClass) bool {
	if r == nil {
		return false
	}
	if class >= NumOpClasses {
		class = OpDefault
	}
	max := int64(r.Rule(class).Hedge.MaxHedges)
	if max <= 0 {
		return false
	}
	if r.inFlight[class].Add(1) > max {
		r.inFlight[class].Add(-1)
		r.suppressed.Add(1)
		return false
	}
	return true
}

// FinishHedge releases a slot claimed by TryStartHedge and tallies the
// hedge's outcome: won (hedge beat the primary) or cancelled (primary won
// and the hedge was aborted). fired distinguishes hedges that actually
// launched from those resolved before their delay elapsed.
func (r *Resilience) FinishHedge(class OpClass, fired, won bool) {
	if r == nil {
		return
	}
	if class >= NumOpClasses {
		class = OpDefault
	}
	r.inFlight[class].Add(-1)
	if !fired {
		return
	}
	r.fired.Add(1)
	if won {
		r.won.Add(1)
	} else {
		r.cancelled.Add(1)
	}
}

// HedgeStats snapshots the hedge lifecycle counters.
func (r *Resilience) HedgeStats() HedgeStats {
	if r == nil {
		return HedgeStats{}
	}
	return HedgeStats{
		Fired:      r.fired.Load(),
		Won:        r.won.Load(),
		Cancelled:  r.cancelled.Load(),
		Suppressed: r.suppressed.Load(),
	}
}

// ClassRule pairs a class with its rule for snapshots and the wire codec.
type ClassRule struct {
	Class OpClass
	Rule  Rule
}

// Snapshot returns every class's current rule in registry order.
func (r *Resilience) Snapshot() []ClassRule {
	out := make([]ClassRule, NumOpClasses)
	for c := OpClass(0); c < NumOpClasses; c++ {
		out[c] = ClassRule{Class: c, Rule: r.Rule(c)}
	}
	return out
}

// Resilience tuning knobs, shared by Tune and the reoctl policy subcommand.
// Durations are expressed in (fractional) seconds on the wire.
const (
	KnobRetryMax      = "retry.max"
	KnobRetryBase     = "retry.base"
	KnobRetryCap      = "retry.cap"
	KnobRetryJitter   = "retry.jitter"
	KnobTimeout       = "timeout"
	KnobHedgeDelay    = "hedge.delay"
	KnobHedgeQuantile = "hedge.quantile"
	KnobHedgeMax      = "hedge.max"
	KnobBudgetRate    = "budget.rate"
	KnobBudgetBurst   = "budget.burst"
)

// Knobs lists every tunable knob name.
func Knobs() []string {
	return []string{
		KnobRetryMax, KnobRetryBase, KnobRetryCap, KnobRetryJitter,
		KnobTimeout, KnobHedgeDelay, KnobHedgeQuantile, KnobHedgeMax,
		KnobBudgetRate, KnobBudgetBurst,
	}
}

// Tune applies one "<class>.<knob>" update (e.g.
// "read.degraded.hedge.delay" = 0.0002 for 200µs). Class names themselves
// contain dots, so the class is matched by longest name prefix.
func (r *Resilience) Tune(key string, value float64) error {
	if r == nil {
		return fmt.Errorf("policy: no resilience registry")
	}
	class, knob, err := SplitKnobKey(key)
	if err != nil {
		return err
	}
	return r.SetKnob(class, knob, value)
}

// SplitKnobKey splits "<class>.<knob>" on the class-name boundary.
func SplitKnobKey(key string) (OpClass, string, error) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		prefix := opClassNames[c] + "."
		if strings.HasPrefix(key, prefix) {
			return c, key[len(prefix):], nil
		}
	}
	return OpDefault, "", fmt.Errorf("policy: no op class matches key %q", key)
}

// SetKnob applies one knob update to one class copy-on-write.
func (r *Resilience) SetKnob(class OpClass, knob string, value float64) error {
	if r == nil {
		return fmt.Errorf("policy: no resilience registry")
	}
	if class >= NumOpClasses {
		return fmt.Errorf("policy: op class %d out of range", class)
	}
	rule := r.Rule(class)
	switch knob {
	case KnobRetryMax:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Retry.MaxAttempts = int(value)
	case KnobRetryBase:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Retry.BaseBackoff = secondsToDuration(value)
	case KnobRetryCap:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Retry.MaxBackoff = secondsToDuration(value)
	case KnobRetryJitter:
		if value < 0 || value > 1 {
			return fmt.Errorf("policy: %s must be in [0,1]", knob)
		}
		rule.Retry.Jitter = value
	case KnobTimeout:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Timeout = secondsToDuration(value)
	case KnobHedgeDelay:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Hedge.Delay = secondsToDuration(value)
	case KnobHedgeQuantile:
		if value < 0 || value >= 1 {
			return fmt.Errorf("policy: %s must be in [0,1)", knob)
		}
		rule.Hedge.DelayQuantile = value
	case KnobHedgeMax:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Hedge.MaxHedges = int(value)
	case KnobBudgetRate:
		rule.Budget.Rate = value
	case KnobBudgetBurst:
		if value < 0 {
			return fmt.Errorf("policy: %s must be >= 0", knob)
		}
		rule.Budget.Burst = value
	default:
		return fmt.Errorf("policy: unknown resilience knob %q", knob)
	}
	r.SetRule(class, rule)
	return nil
}

// KnobValue reads one knob back in the same units Tune accepts.
func (r *Resilience) KnobValue(class OpClass, knob string) (float64, error) {
	rule := r.Rule(class)
	switch knob {
	case KnobRetryMax:
		return float64(rule.Retry.MaxAttempts), nil
	case KnobRetryBase:
		return rule.Retry.BaseBackoff.Seconds(), nil
	case KnobRetryCap:
		return rule.Retry.MaxBackoff.Seconds(), nil
	case KnobRetryJitter:
		return rule.Retry.Jitter, nil
	case KnobTimeout:
		return rule.Timeout.Seconds(), nil
	case KnobHedgeDelay:
		return rule.Hedge.Delay.Seconds(), nil
	case KnobHedgeQuantile:
		return rule.Hedge.DelayQuantile, nil
	case KnobHedgeMax:
		return float64(rule.Hedge.MaxHedges), nil
	case KnobBudgetRate:
		return rule.Budget.Rate, nil
	case KnobBudgetBurst:
		return rule.Budget.Burst, nil
	}
	return 0, fmt.Errorf("policy: unknown resilience knob %q", knob)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
