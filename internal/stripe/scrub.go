package stripe

import (
	"time"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/simclock"
)

// ScrubResult summarises one verification pass over the stripes.
type ScrubResult struct {
	// Scanned counts stripes examined.
	Scanned int
	// Healthy counts stripes whose parity (or replicas) verified clean.
	Healthy int
	// Degraded counts stripes with missing-but-recoverable chunks.
	Degraded int
	// Lost counts irrecoverable stripes.
	Lost int
	// Mismatched counts stripes whose stored parity disagrees with a
	// re-encode of the data chunks, or whose replicas disagree with each
	// other — silent corruption.
	Mismatched []ID
}

// Scrub verifies every stripe's redundancy consistency: for parity stripes
// it re-encodes the data chunks and compares against the stored parity; for
// replicated stripes it compares all copies. Flash cells do fail silently
// (the paper's §I motivates Reo with exactly such partial data loss), so a
// periodic scrub is how a production cache would detect it. Scrub returns
// the virtual-time IO cost of the pass.
//
// The pass walks a snapshot of the stripe IDs and locks each stripe only
// while verifying it, so foreground reads and writes to other stripes are
// never blocked behind the scrub.
func (m *Manager) Scrub() (ScrubResult, time.Duration, error) {
	return m.ScrubCtx(nil)
}

// ScrubCtx is Scrub driven by a request context: device reads carry the
// context's op class (scrub.bg when the store drives it), so scrub IO
// resolves its own retry policy, and cancellation stops the pass at the
// next stripe boundary.
func (m *Manager) ScrubCtx(rc *reqctx.Ctx) (ScrubResult, time.Duration, error) {
	var (
		res   ScrubResult
		total time.Duration
	)
	for _, id := range m.IDs() {
		if err := rc.Err(); err != nil {
			return res, total, err
		}
		m.mu.RLock()
		meta, ok := m.stripes[id]
		m.mu.RUnlock()
		if !ok {
			continue // freed since the snapshot
		}
		res.Scanned++
		meta.mu.RLock()
		switch m.status(id, meta) {
		case StatusLost:
			res.Lost++
			meta.mu.RUnlock()
			continue
		case StatusDegraded:
			res.Degraded++
			meta.mu.RUnlock()
			continue
		}
		ok, cost, err := m.verifyStripe(rc, id, meta)
		meta.mu.RUnlock()
		total += cost
		if err != nil {
			return res, total, err
		}
		if ok {
			res.Healthy++
		} else {
			res.Mismatched = append(res.Mismatched, id)
		}
	}
	return res, total, nil
}

// verifyStripe checks one stripe's redundancy. The caller holds the
// stripe's read lock.
func (m *Manager) verifyStripe(rc *reqctx.Ctx, id ID, meta *stripeMeta) (bool, time.Duration, error) {
	if meta.scheme.Kind == policy.KindReplicate {
		return m.verifyReplicated(rc, id, meta)
	}
	return m.verifyParity(rc, id, meta)
}

func (m *Manager) verifyReplicated(rc *reqctx.Ctx, id ID, meta *stripeMeta) (bool, time.Duration, error) {
	copies := make([][]byte, len(meta.replicaDevs))
	costs := make([]time.Duration, len(meta.replicaDevs))
	_ = fanChunks(len(meta.replicaDevs), meta.chunkLen, func(i int) error {
		data, cost, err := m.array.Device(meta.replicaDevs[i]).ReadCtx(rc, flash.ChunkAddr(id))
		if err != nil {
			return nil // missing replicas are Degraded, handled by caller
		}
		copies[i] = data
		costs[i] = cost
		return nil
	})
	var first []byte
	for _, data := range copies {
		if data == nil {
			continue
		}
		if first == nil {
			first = data
			continue
		}
		if !bytesEqual(first, data) {
			return false, simclock.Parallel(costs...), nil
		}
	}
	return true, simclock.Parallel(costs...), nil
}

func (m *Manager) verifyParity(rc *reqctx.Ctx, id ID, meta *stripeMeta) (bool, time.Duration, error) {
	k := len(meta.parityDevs)
	if k == 0 {
		// Nothing to cross-check on 0-parity stripes.
		return true, 0, nil
	}
	dataChunks := len(meta.dataDevs)
	allDevs := append(append([]int(nil), meta.dataDevs...), meta.parityDevs...)
	fragments := make([][]byte, dataChunks+k)
	costs := make([]time.Duration, dataChunks+k)
	_ = fanChunks(len(allDevs), meta.chunkLen, func(i int) error {
		data, cost, err := m.array.Device(allDevs[i]).ReadCtx(rc, flash.ChunkAddr(id))
		if err != nil {
			return nil
		}
		fragments[i] = data
		costs[i] = cost
		return nil
	})
	for _, f := range fragments {
		if f == nil {
			return true, simclock.Parallel(costs...), nil // degraded; not a mismatch
		}
	}
	codec, err := m.codec(dataChunks, k)
	if err != nil {
		return false, 0, err
	}
	ok, err := codec.Verify(fragments)
	if err != nil {
		return false, 0, err
	}
	cost := simclock.Parallel(costs...) +
		simclock.TransferTime(int64(dataChunks*meta.chunkLen), encodeBandwidth)
	return ok, cost, nil
}

// RepairStripe attempts in-place repair of a stripe Scrub flagged as
// mismatched (silently corrupted). It reports whether the stripe was
// repaired and the virtual-time IO cost of the attempt.
//
// Replicated stripes repair by majority vote: with a strict majority of
// identical readable copies, dissenting replicas are rewritten from the
// winner. Parity stripes with k >= 2 repair by corruption location: for
// each candidate chunk, reconstruct it from the others and accept the
// candidate whose substitution makes the whole stripe verify — for a
// single corrupted chunk this locates it uniquely. With k == 1 (or a tied
// vote) the corruption is detectable but not locatable, so the stripe is
// left for the caller to invalidate.
func (m *Manager) RepairStripe(id ID) (bool, time.Duration, error) {
	m.mu.RLock()
	meta, ok := m.stripes[id]
	m.mu.RUnlock()
	if !ok {
		return false, 0, ErrUnknownStripe
	}
	meta.mu.Lock()
	defer meta.mu.Unlock()
	if meta.scheme.Kind == policy.KindReplicate {
		return m.repairReplicated(id, meta)
	}
	return m.repairParity(id, meta)
}

func (m *Manager) repairReplicated(id ID, meta *stripeMeta) (bool, time.Duration, error) {
	copies := make([][]byte, len(meta.replicaDevs))
	costs := make([]time.Duration, len(meta.replicaDevs))
	_ = fanChunks(len(meta.replicaDevs), meta.chunkLen, func(i int) error {
		data, cost, err := m.array.Device(meta.replicaDevs[i]).Read(flash.ChunkAddr(id))
		if err != nil {
			return nil
		}
		copies[i] = data
		costs[i] = cost
		return nil
	})
	total := simclock.Parallel(costs...)
	readable := 0
	var winner []byte
	best := 0
	for i, c := range copies {
		if c == nil {
			continue
		}
		readable++
		votes := 0
		for _, other := range copies {
			if other != nil && bytesEqual(c, other) {
				votes++
			}
		}
		if votes > best {
			best = votes
			winner = copies[i]
		}
	}
	if winner == nil || best*2 <= readable {
		return false, total, nil // no strict majority: cannot arbitrate
	}
	writeCosts := make([]time.Duration, len(meta.replicaDevs))
	repaired := false
	for i, c := range copies {
		if c == nil || bytesEqual(c, winner) {
			continue
		}
		cost, err := m.array.Device(meta.replicaDevs[i]).Write(flash.ChunkAddr(id), winner)
		if err != nil {
			continue
		}
		writeCosts[i] = cost
		repaired = true
		m.repairedChunks.Add(1)
	}
	return repaired, total + simclock.Parallel(writeCosts...), nil
}

func (m *Manager) repairParity(id ID, meta *stripeMeta) (bool, time.Duration, error) {
	k := len(meta.parityDevs)
	if k < 2 {
		return false, 0, nil // single corruption not locatable with k < 2
	}
	dataChunks := len(meta.dataDevs)
	allDevs := append(append([]int(nil), meta.dataDevs...), meta.parityDevs...)
	fragments := make([][]byte, len(allDevs))
	costs := make([]time.Duration, len(allDevs))
	_ = fanChunks(len(allDevs), meta.chunkLen, func(i int) error {
		data, cost, err := m.array.Device(allDevs[i]).Read(flash.ChunkAddr(id))
		if err != nil {
			return nil
		}
		fragments[i] = data
		costs[i] = cost
		return nil
	})
	total := simclock.Parallel(costs...)
	for _, f := range fragments {
		if f == nil {
			// Missing chunks make this a degraded stripe; the normal
			// reconstruction machinery owns that case.
			return false, total, nil
		}
	}
	codec, err := m.codec(dataChunks, k)
	if err != nil {
		return false, total, err
	}
	scratch := make([][]byte, len(fragments))
	for cand := range fragments {
		copy(scratch, fragments)
		scratch[cand] = nil
		if err := codec.Reconstruct(scratch); err != nil {
			continue
		}
		total += simclock.TransferTime(int64(dataChunks*meta.chunkLen), encodeBandwidth)
		ok, err := codec.Verify(scratch)
		if err != nil || !ok || bytesEqual(scratch[cand], fragments[cand]) {
			continue
		}
		cost, werr := m.array.Device(allDevs[cand]).Write(flash.ChunkAddr(id), scratch[cand])
		if werr != nil {
			return false, total, nil
		}
		m.repairedChunks.Add(1)
		return true, total + cost, nil
	}
	return false, total, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
