// Log-structured layout: append-only segments, tombstones, and
// segment-granular garbage collection.
//
// Under LayoutLog a device never overwrites a chunk in place. Every host
// write appends into the open segment; overwrites and deletes tombstone the
// chunk's previous copy, leaving dead bytes behind in whatever segment holds
// it. When enough dead bytes accumulate, GC picks a victim segment by a
// cost-benefit score (garbage ratio weighted by segment age, the LFS/Nemo
// policy), relocates only the still-live chunks into the open segment, and
// erases the victim — the only operation that reclaims space and the only
// operation that consumes an erase cycle.
//
// Chunk addressing is unaffected: the data/crcs maps stay keyed by
// ChunkAddr, so the stripe manager's placement directory, scrub, and
// recovery observe exactly the address-stable device they always did. The
// segment machinery is an FTL-style indirection *below* chunk addresses:
// relocation moves accounting, never addresses, which is what keeps
// GC-moved chunks' CRCs and placement entries consistent without any new
// cross-layer locking.
//
// Cost model: GC relocation and erases are charged to wear and
// write-amplification counters (Stats.GCBytesWritten, Stats.SegmentErases)
// but never to the virtual clock and never to the fault-injection op-index
// stream. This keeps serial replays byte-identical whether or not a
// background collector happens to be running — WA and wear are the
// first-class outputs of this layout, not request latency.
package flash

import (
	"hash/crc32"
	"sort"
)

// Layout selects how a device organises chunk writes physically.
type Layout int

// Layouts.
const (
	// LayoutInPlace is the seed behavior: chunks are written and
	// overwritten in place and deletes free space immediately.
	LayoutInPlace Layout = iota
	// LayoutLog appends chunks into fixed-size segments; overwrites and
	// deletes tombstone the old copy and segment-granular GC reclaims it.
	LayoutLog
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutInPlace:
		return "in-place"
	case LayoutLog:
		return "log"
	default:
		return "Layout(?)"
	}
}

// LogConfig tunes the log-structured layout. The zero value selects
// defaults suitable for any device size.
type LogConfig struct {
	// SegmentBytes is the append-unit / erase-unit size. Zero picks
	// capacity/64 clamped to [4KiB, 4MiB].
	SegmentBytes int64
	// OPReserve is the fraction of raw capacity withheld from host writes
	// as GC headroom (overprovisioning). Zero picks 0.08. The effective
	// reserve is never less than two segments, so a victim's live bytes
	// always fit during relocation.
	OPReserve float64
	// GCTrigger starts background collection when dead bytes exceed this
	// fraction of capacity. Zero picks 0.10.
	GCTrigger float64
	// GCTarget stops background collection once dead bytes fall to this
	// fraction of capacity. Zero picks half of GCTrigger.
	GCTarget float64
}

func (c LogConfig) normalized(capacity int64) LogConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = capacity / 64
		if c.SegmentBytes < 4<<10 {
			c.SegmentBytes = 4 << 10
		}
		if c.SegmentBytes > 4<<20 {
			c.SegmentBytes = 4 << 20
		}
	}
	if c.OPReserve <= 0 {
		c.OPReserve = 0.08
	}
	if c.GCTrigger <= 0 {
		c.GCTrigger = 0.10
	}
	if c.GCTarget <= 0 || c.GCTarget >= c.GCTrigger {
		c.GCTarget = c.GCTrigger / 2
	}
	return c
}

// segment is one append unit. fill is the monotonic append offset (bytes
// ever appended — tombstoning never makes room inside an unerased segment),
// live the bytes of resident live chunks, dead the tombstoned bytes this
// segment contributes to the device's garbage total.
type segment struct {
	id     uint32
	seq    uint64 // allocation sequence; lower = older
	fill   int64
	live   int64
	dead   int64
	chunks map[ChunkAddr]int64
}

// logState is the per-device log-layout bookkeeping, embedded in Device and
// guarded by Device.mu.
type logState struct {
	cfg      LogConfig
	segs     map[uint32]*segment
	open     *segment
	chunkSeg map[ChunkAddr]uint32
	nextSeg  uint32
	segSeq   uint64
	garbage  int64 // total dead bytes across all unerased segments
}

func newLogState(cfg LogConfig, capacity int64) logState {
	return logState{
		cfg:      cfg.normalized(capacity),
		segs:     make(map[uint32]*segment),
		chunkSeg: make(map[ChunkAddr]uint32),
	}
}

func (ls *logState) reset() {
	ls.segs = make(map[uint32]*segment)
	ls.open = nil
	ls.chunkSeg = make(map[ChunkAddr]uint32)
	ls.garbage = 0
	// nextSeg/segSeq deliberately keep counting across Replace: segment
	// identity is per-slot history, like Device.generation.
}

// NewDeviceLayout returns a healthy, empty device using the given layout.
// LayoutInPlace ignores cfg and behaves exactly like NewDevice.
func NewDeviceLayout(spec Spec, layout Layout, cfg LogConfig) *Device {
	d := NewDevice(spec)
	d.layout = layout
	if layout == LayoutLog {
		d.log = newLogState(cfg, spec.CapacityBytes)
	}
	return d
}

// Layout returns the device's physical write organisation.
func (d *Device) Layout() Layout {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.layout
}

// SetGCThresholds adjusts the background-GC trigger/target ratios at
// runtime (reoctl tune). Out-of-range or inverted values are normalized; a
// no-op on in-place devices.
func (d *Device) SetGCThresholds(trigger, target float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.layout != LayoutLog {
		return
	}
	c := d.log.cfg
	c.GCTrigger = trigger
	c.GCTarget = target
	if c.GCTrigger <= 0 || c.GCTrigger > 1 {
		c.GCTrigger = 0.10
	}
	if c.GCTarget <= 0 || c.GCTarget >= c.GCTrigger {
		c.GCTarget = c.GCTrigger / 2
	}
	d.log.cfg = c
}

// GCThresholds returns the current background-GC trigger/target ratios
// (zeros on in-place devices).
func (d *Device) GCThresholds() (trigger, target float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.layout != LayoutLog {
		return 0, 0
	}
	return d.log.cfg.GCTrigger, d.log.cfg.GCTarget
}

// hostCapLocked is the capacity visible to host writes: raw capacity minus
// the overprovisioning reserve. The reserve is at least two segments so GC
// always has room to relocate a full victim.
func (d *Device) hostCapLocked() int64 {
	reserve := int64(d.log.cfg.OPReserve * float64(d.spec.CapacityBytes))
	if min := 2 * d.log.cfg.SegmentBytes; reserve < min {
		reserve = min
	}
	if reserve > d.spec.CapacityBytes/2 {
		reserve = d.spec.CapacityBytes / 2
	}
	return d.spec.CapacityBytes - reserve
}

// openForLocked returns the open segment with room for n more bytes,
// sealing the current one and allocating a fresh segment when needed. A
// chunk larger than SegmentBytes gets a dedicated oversized segment.
func (d *Device) openForLocked(n int64) *segment {
	if d.log.open != nil && d.log.open.fill+n <= d.log.cfg.SegmentBytes {
		return d.log.open
	}
	d.log.nextSeg++
	d.log.segSeq++
	seg := &segment{
		id:     d.log.nextSeg,
		seq:    d.log.segSeq,
		chunks: make(map[ChunkAddr]int64),
	}
	d.log.segs[seg.id] = seg
	d.log.open = seg
	return seg
}

// appendChunkLocked records addr (n bytes) as appended into the log. It
// only moves segment bookkeeping; callers adjust d.used and stats.
func (d *Device) appendChunkLocked(addr ChunkAddr, n int64) {
	seg := d.openForLocked(n)
	seg.chunks[addr] = n
	seg.fill += n
	seg.live += n
	d.log.chunkSeg[addr] = seg.id
}

// tombstoneLocked marks addr's current copy dead in whatever segment holds
// it. It only moves segment bookkeeping (live→dead, garbage and tombstone
// counters); callers adjust d.used and the data/crcs maps.
func (d *Device) tombstoneLocked(addr ChunkAddr) {
	id, ok := d.log.chunkSeg[addr]
	if !ok {
		return
	}
	seg := d.log.segs[id]
	n := seg.chunks[addr]
	delete(seg.chunks, addr)
	seg.live -= n
	seg.dead += n
	d.log.garbage += n
	d.stats.TombstonedBytes += n
	delete(d.log.chunkSeg, addr)
}

// victimLocked picks the sealed segment with the best cost-benefit score
// (1-u)/(1+u) * age — the LFS greedy-by-age policy Nemo uses — among those
// holding dead bytes. With force set and no sealed candidate, the open
// segment is sealed so its garbage becomes collectable. Ties break to the
// lower segment id so victim choice is deterministic.
func (d *Device) victimLocked(force bool) *segment {
	var best *segment
	var bestScore float64
	for _, seg := range d.log.segs {
		if seg == d.log.open || seg.dead == 0 {
			continue
		}
		u := float64(seg.live) / float64(seg.fill)
		age := float64(d.log.segSeq-seg.seq) + 1
		score := (1 - u) / (1 + u) * age
		if best == nil || score > bestScore || (score == bestScore && seg.id < best.id) {
			best, bestScore = seg, score
		}
	}
	if best == nil && force && d.log.open != nil && d.log.open.dead > 0 {
		best = d.log.open
		d.log.open = nil // seal: next append allocates a fresh segment
	}
	return best
}

// collectOnceLocked relocates the victim's live chunks into the open
// segment, verifies each relocated chunk's CRC32C (a corrupt chunk is
// dropped, exactly like a latent sector error, so the stripe layer
// reconstructs it), and erases the victim. Returns the relocated byte count
// and whether a victim was collected.
func (d *Device) collectOnceLocked(force bool) (int64, bool) {
	victim := d.victimLocked(force)
	if victim == nil {
		return 0, false
	}
	addrs := make([]ChunkAddr, 0, len(victim.chunks))
	for addr := range victim.chunks {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var moved int64
	for _, addr := range addrs {
		n := victim.chunks[addr]
		delete(victim.chunks, addr)
		victim.live -= n
		delete(d.log.chunkSeg, addr)
		data := d.data[addr]
		if crc32.Checksum(data, castagnoli) != d.crcs[addr] {
			// Corruption found while relocating: drop the chunk so reads
			// see it as missing and reconstruct through parity. Its bytes
			// die with the victim segment.
			delete(d.data, addr)
			delete(d.crcs, addr)
			d.used -= n
			d.recordOutcomeLocked(false, 0, &d.health.checksumErrors)
			if d.state == StateFailed {
				// The health monitor failed the device on this error and
				// reset all log state — the victim no longer exists.
				return moved, true
			}
			continue
		}
		d.appendChunkLocked(addr, n)
		d.stats.BytesWritten += n
		d.stats.GCBytesWritten += n
		moved += n
	}
	d.log.garbage -= victim.dead
	delete(d.log.segs, victim.id)
	d.stats.SegmentErases++
	return moved, true
}

// CollectOnce performs one background-GC step: pick the best sealed victim
// holding dead bytes, relocate its live chunks, erase it. It reports the
// relocated byte count and whether anything was collected. Safe to call at
// any time; a no-op on in-place or failed devices.
func (d *Device) CollectOnce() (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.layout != LayoutLog || d.state == StateFailed {
		return 0, false
	}
	return d.collectOnceLocked(false)
}

// GCTriggered reports whether dead bytes have crossed the background-GC
// start threshold and a sealed victim exists.
func (d *Device) GCTriggered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.layout != LayoutLog || d.state == StateFailed {
		return false
	}
	return d.sealedGarbageLocked() > 0 &&
		d.log.garbage >= int64(d.log.cfg.GCTrigger*float64(d.spec.CapacityBytes))
}

// GCBacklog reports whether background GC, once running, should keep
// collecting: dead bytes above the target ratio with a sealed victim left.
func (d *Device) GCBacklog() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.layout != LayoutLog || d.state == StateFailed {
		return false
	}
	return d.sealedGarbageLocked() > 0 &&
		d.log.garbage > int64(d.log.cfg.GCTarget*float64(d.spec.CapacityBytes))
}

func (d *Device) sealedGarbageLocked() int64 {
	g := d.log.garbage
	if d.log.open != nil {
		g -= d.log.open.dead
	}
	return g
}

// SegmentStats is a point-in-time snapshot of one device's log-layout
// occupancy and write-amplification counters. For in-place devices only
// Layout, capacity/live bytes, and the write counters are meaningful.
type SegmentStats struct {
	Layout          Layout
	State           State
	CapacityBytes   int64
	SegmentBytes    int64
	Segments        int   // unerased segments, open included
	OpenFill        int64 // append offset inside the open segment
	LiveBytes       int64
	GarbageBytes    int64
	BytesWritten    int64 // total flash writes: host + GC relocation
	GCBytesWritten  int64 // GC relocation share of BytesWritten
	TombstonedBytes int64 // cumulative bytes ever tombstoned
	SegmentErases   int64
	WearCycles      float64
}

// GarbageRatio is dead bytes over occupied bytes (live+dead), the fraction
// of written flash currently holding garbage. Zero when empty.
func (s SegmentStats) GarbageRatio() float64 {
	occ := s.LiveBytes + s.GarbageBytes
	if occ == 0 {
		return 0
	}
	return float64(s.GarbageBytes) / float64(occ)
}

// WriteAmp is total flash bytes written per host-written byte
// (FlashWritesBytes / UserWritesBytes at device granularity). 1.0 until GC
// relocates something; 0 when nothing has been written.
func (s SegmentStats) WriteAmp() float64 {
	host := s.BytesWritten - s.GCBytesWritten
	if host == 0 {
		return 0
	}
	return float64(s.BytesWritten) / float64(host)
}

// SegmentStats snapshots the device's segment occupancy and WA counters.
func (d *Device) SegmentStats() SegmentStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := SegmentStats{
		Layout:          d.layout,
		State:           d.state,
		CapacityBytes:   d.spec.CapacityBytes,
		LiveBytes:       d.used,
		BytesWritten:    d.stats.BytesWritten,
		GCBytesWritten:  d.stats.GCBytesWritten,
		TombstonedBytes: d.stats.TombstonedBytes,
		SegmentErases:   d.stats.SegmentErases,
		WearCycles:      d.wearCyclesLocked(),
	}
	if d.layout == LayoutLog {
		s.SegmentBytes = d.log.cfg.SegmentBytes
		s.Segments = len(d.log.segs)
		s.GarbageBytes = d.log.garbage
		if d.log.open != nil {
			s.OpenFill = d.log.open.fill
		}
	}
	return s
}
