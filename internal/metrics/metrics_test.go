package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBasicCounters(t *testing.T) {
	c := NewCollector(0)
	c.Record(true, false, 1000, time.Millisecond)
	c.Record(false, false, 2000, 3*time.Millisecond)
	c.Record(true, true, 500, 2*time.Millisecond)
	s := c.Snapshot(10 * time.Second)
	if s.Requests != 3 || s.Hits != 2 || s.DegradedHits != 1 {
		t.Fatalf("counters = %+v", s)
	}
	if s.BytesServed != 3500 {
		t.Fatalf("bytes = %d", s.BytesServed)
	}
	if s.HitRatio < 0.66 || s.HitRatio > 0.67 {
		t.Fatalf("hit ratio = %v", s.HitRatio)
	}
	if s.MeanLatency != 2*time.Millisecond {
		t.Fatalf("mean latency = %v", s.MeanLatency)
	}
	if s.MaxLatency != 3*time.Millisecond {
		t.Fatalf("max latency = %v", s.MaxLatency)
	}
	if s.Elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
}

func TestBandwidth(t *testing.T) {
	c := NewCollector(0)
	c.Record(true, false, 100e6, time.Millisecond)
	s := c.Snapshot(time.Second)
	if s.BandwidthMBps != 100 {
		t.Fatalf("bandwidth = %v, want 100", s.BandwidthMBps)
	}
}

func TestBandwidthWindowStartsAtCollectorStart(t *testing.T) {
	c := NewCollector(5 * time.Second)
	c.Record(true, false, 100e6, time.Millisecond)
	s := c.Snapshot(6 * time.Second)
	if s.Elapsed != time.Second {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
	if s.BandwidthMBps != 100 {
		t.Fatalf("bandwidth = %v", s.BandwidthMBps)
	}
}

func TestEmptySnapshot(t *testing.T) {
	c := NewCollector(0)
	s := c.Snapshot(time.Second)
	if s.HitRatio != 0 || s.MeanLatency != 0 || s.BandwidthMBps != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(0)
	c.Record(true, false, 1000, time.Millisecond)
	c.Reset(time.Minute)
	s := c.Snapshot(2 * time.Minute)
	if s.Requests != 0 || s.BytesServed != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if s.Elapsed != time.Minute {
		t.Fatalf("elapsed after reset = %v", s.Elapsed)
	}
}

func TestQuantiles(t *testing.T) {
	c := NewCollector(0)
	// 90 fast requests, 10 slow: P50 lands in the fast bucket, P99 in the
	// slow one.
	for i := 0; i < 90; i++ {
		c.Record(true, false, 1, 100*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		c.Record(true, false, 1, time.Second)
	}
	s := c.Snapshot(time.Second)
	if s.P50 > time.Millisecond {
		t.Fatalf("P50 = %v, should be near 100µs", s.P50)
	}
	if s.P99 < 100*time.Millisecond {
		t.Fatalf("P99 = %v, should reflect the slow request", s.P99)
	}
	if s.P99 < s.P50 {
		t.Fatal("P99 < P50")
	}
}

func TestBucketIndexBounds(t *testing.T) {
	if bucketIndex(0) != 0 {
		t.Fatal("zero latency bucket")
	}
	if bucketIndex(500*time.Nanosecond) != 0 {
		t.Fatal("sub-base latency bucket")
	}
	if got := bucketIndex(time.Hour); got != bucketCount-1 {
		t.Fatalf("huge latency bucket = %d", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	c := NewCollector(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Record(i%2 == 0, false, 10, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot(time.Second)
	if s.Requests != 4000 || s.Hits != 2000 {
		t.Fatalf("requests/hits = %d/%d", s.Requests, s.Hits)
	}
}

func TestStatsString(t *testing.T) {
	c := NewCollector(0)
	c.Record(true, false, 1e6, time.Millisecond)
	out := c.Snapshot(time.Second).String()
	for _, want := range []string{"hit=", "bw=", "lat=", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String = %q missing %q", out, want)
		}
	}
}

func TestOpHistogram(t *testing.T) {
	h := NewOpHistogram()
	if got := h.Snapshot(); len(got) != 0 {
		t.Fatalf("empty histogram snapshot has %d ops", len(got))
	}
	for i := 0; i < 99; i++ {
		h.Record("read.hit", 100*time.Microsecond)
	}
	h.Record("read.hit", 10*time.Millisecond)
	h.Record("write", 1*time.Millisecond)

	ops := h.Snapshot()
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[0].Op != "read.hit" || ops[1].Op != "write" {
		t.Fatalf("ops not sorted: %v, %v", ops[0].Op, ops[1].Op)
	}
	rh := ops[0]
	if rh.Count != 100 {
		t.Errorf("read.hit count = %d, want 100", rh.Count)
	}
	if rh.Max != 10*time.Millisecond {
		t.Errorf("read.hit max = %v, want 10ms", rh.Max)
	}
	wantMean := (99*100*time.Microsecond + 10*time.Millisecond) / 100
	if rh.Mean != wantMean {
		t.Errorf("read.hit mean = %v, want %v", rh.Mean, wantMean)
	}
	// p50 lands in the 100µs bucket, p99 at/above the outlier's bucket.
	if rh.P50 > time.Millisecond {
		t.Errorf("read.hit p50 = %v, want <= 1ms", rh.P50)
	}
	if rh.P99 < rh.P50 {
		t.Errorf("read.hit p99 %v < p50 %v", rh.P99, rh.P50)
	}
	if s := h.String(); !strings.Contains(s, "read.hit") || !strings.Contains(s, "write") {
		t.Errorf("String() missing ops:\n%s", s)
	}
}

func TestOpHistogramConcurrent(t *testing.T) {
	h := NewOpHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record("op", time.Duration(i)*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ops := h.Snapshot()
	if len(ops) != 1 || ops[0].Count != 8000 {
		t.Fatalf("got %+v, want one op with count 8000", ops)
	}
}
