package hdd

import (
	"testing"
	"time"
)

func TestRotationalDelay(t *testing.T) {
	s := Spec{RPM: 7200}
	// 7200 RPM = 120 rev/s = 8.33ms per rev; half is ~4.17ms.
	got := s.RotationalDelay()
	if got < 4*time.Millisecond || got > 4300*time.Microsecond {
		t.Fatalf("RotationalDelay = %v, want ~4.17ms", got)
	}
	if (Spec{RPM: 0}).RotationalDelay() != 0 {
		t.Fatal("zero RPM should have zero rotational delay")
	}
}

func TestAccessCostComponents(t *testing.T) {
	s := WD1TB(1e12)
	zero := s.AccessCost(0)
	if zero != s.AvgSeek+s.RotationalDelay() {
		t.Fatalf("AccessCost(0) = %v, want seek+rotation = %v", zero, s.AvgSeek+s.RotationalDelay())
	}
	// 120 MB at 120 MB/s adds one second.
	withData := s.AccessCost(120e6)
	if diff := withData - zero; diff < 990*time.Millisecond || diff > 1010*time.Millisecond {
		t.Fatalf("transfer component = %v, want ~1s", diff)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	s := WD1TB(1e12)
	n := int64(1 << 20)
	if s.SequentialCost(n) >= s.AccessCost(n) {
		t.Fatal("sequential transfer should be cheaper than random access")
	}
}

func TestWD1TBSpec(t *testing.T) {
	s := WD1TB(1e12)
	if s.CapacityBytes != 1e12 || s.RPM != 7200 {
		t.Fatalf("spec = %+v", s)
	}
}
