// Package flash models the array of flash SSDs that backs Reo's object
// cache. Each Device stores chunk payloads in memory, charges virtual-time
// costs for reads and writes from a datasheet-style Spec, tracks wear and IO
// statistics, and supports the failure events the paper's evaluation
// exercises: taking a device offline ("shootdown") and inserting a blank
// spare to trigger reconstruction.
//
// Beyond clean fail-stop, devices model the partial failures that dominate
// in practice (transient read errors, latent sector errors, silent bit rot,
// fail-slow): every chunk carries a CRC32C verified on each foreground read,
// a pluggable FaultHook can inject faults deterministically, transient
// errors are retried with bounded exponential backoff, and a per-device
// health monitor (windowed error rate + latency-slowdown EWMA) transitions
// the device healthy → suspect → failed without operator involvement.
//
// Devices return costs instead of touching a clock directly so that callers
// can combine concurrent chunk operations (a stripe read fans out across
// devices) into a single critical-path charge.
package flash

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/simclock"
)

// State describes a device's availability.
type State int

// Device states.
const (
	StateHealthy State = iota + 1
	StateFailed        // device has failed; contents are inaccessible
	StateSuspect       // device still serves IO but health metrics are degraded
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors reported by devices.
var (
	ErrDeviceFailed  = errors.New("flash: device has failed")
	ErrChunkNotFound = errors.New("flash: chunk not found")
	ErrDeviceFull    = errors.New("flash: device is full")
	// ErrTransientIO marks a retryable fault: the op may succeed if retried.
	// Devices retry it internally with bounded backoff before surfacing it.
	ErrTransientIO = errors.New("flash: transient io error")
	// ErrChunkCorrupt reports that a chunk failed its checksum or hit a
	// latent sector error. The device drops the chunk when this happens, so
	// callers observe it exactly like a missing chunk and route the read
	// through degraded-path reconstruction.
	ErrChunkCorrupt = errors.New("flash: chunk corrupt")
)

// IsTransient reports whether err is a retryable device fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }

// castagnoli is the CRC32C table used for per-chunk checksums (the
// polynomial storage systems use for end-to-end integrity).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChunkAddr identifies a chunk on a device. Addresses are assigned by the
// stripe manager and are unique per device.
type ChunkAddr uint64

// FaultOp distinguishes the operation a FaultHook is consulted for.
type FaultOp uint8

// Fault operations.
const (
	FaultRead FaultOp = iota
	FaultWrite
)

// FaultDecision is what a FaultHook injects into one device operation. The
// zero value means "no fault".
type FaultDecision struct {
	// Err, when non-nil, fails the attempt with this error. Wrap
	// ErrTransientIO to make the device retry it with backoff.
	Err error
	// DropChunk discards the addressed chunk before the op proceeds,
	// modelling a latent sector error: the data is gone until rewritten.
	// Only honoured on reads of chunks that exist.
	DropChunk bool
	// FlipByte, when positive, flips one bit in stored byte (FlipByte-1)
	// modulo the chunk length, leaving the stored CRC stale so the read
	// path detects it. Only honoured on reads. Zero means no corruption.
	FlipByte int
	// LatencyScale > 1 multiplies the op's virtual-time cost (fail-slow).
	LatencyScale float64
	// FailStop fails the whole device before the op (contents discarded).
	FailStop bool
}

// FaultHook decides, per operation, which fault (if any) to inject. A hook
// must be safe for concurrent use and must not call back into the device.
// Implementations that derive decisions from (seed, device, op-index) make
// fault runs replay deterministically; see internal/faultinject.
type FaultHook interface {
	Decide(op FaultOp, addr ChunkAddr) FaultDecision
}

// Spec holds the performance and capacity parameters of a flash device.
type Spec struct {
	// CapacityBytes is the usable capacity of the device.
	CapacityBytes int64
	// ReadBandwidth and WriteBandwidth are sustained rates in bytes/sec.
	ReadBandwidth  float64
	WriteBandwidth float64
	// ReadLatency and WriteLatency are fixed per-operation overheads.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// Intel540s returns a spec modelled on the Intel 540s 120GB SATA SSD used in
// the paper's cache server (5-device array). Capacity is set by the caller
// per experiment scale.
func Intel540s(capacity int64) Spec {
	return Spec{
		CapacityBytes:  capacity,
		ReadBandwidth:  560e6,
		WriteBandwidth: 480e6,
		ReadLatency:    60 * time.Microsecond,
		WriteLatency:   70 * time.Microsecond,
	}
}

// Stats aggregates a device's IO counters since it was created or replaced.
// BytesWritten counts every flash write (host writes plus GC relocation);
// the host-written share is BytesWritten - GCBytesWritten, which makes
// device write amplification BytesWritten / (BytesWritten - GCBytesWritten).
type Stats struct {
	ReadOps      int64
	WriteOps     int64 // host write operations (GC relocation not counted)
	BytesRead    int64
	BytesWritten int64
	// Log-layout counters; zero under LayoutInPlace.
	GCBytesWritten  int64 // bytes rewritten by segment GC relocation
	SegmentErases   int64 // victim segments erased
	TombstonedBytes int64 // cumulative bytes invalidated by overwrite/delete
}

// Retry policy for transient faults: bounded exponential backoff with
// deterministic jitter, real (wall-clock) sleeps only — virtual time is
// charged per attempt from the device spec, so fault-free runs are
// byte-identical with retries compiled in. The schedule now comes from the
// policy.Resilience registry keyed by the request's op class; these
// constants remain as the reference values the registry's defaults must
// reproduce (asserted in tests).
const (
	maxIOAttempts  = 4
	retryBaseDelay = 50 * time.Microsecond
	retryMaxDelay  = 2 * time.Millisecond
)

// Device is a simulated flash SSD. All methods are safe for concurrent use.
type Device struct {
	mu    sync.Mutex
	spec  Spec
	state State
	data  map[ChunkAddr][]byte
	crcs  map[ChunkAddr]uint32
	used  int64
	stats Stats
	// generation counts how many physical devices have occupied this slot;
	// it increments on Replace so stale chunk references can be detected.
	generation int
	hook       FaultHook
	health     healthState
	// layout selects in-place (seed) vs log-structured writes; log is the
	// per-segment bookkeeping, only populated under LayoutLog.
	layout Layout
	log    logState
	// res is the resilience registry retry loops consult; nil serves the
	// built-in defaults (identical behaviour to the pre-registry constants).
	res atomic.Pointer[policy.Resilience]
}

// NewDevice returns a healthy, empty device with the given spec.
func NewDevice(spec Spec) *Device {
	return &Device{
		spec:   spec,
		state:  StateHealthy,
		data:   make(map[ChunkAddr][]byte),
		crcs:   make(map[ChunkAddr]uint32),
		health: newHealthState(),
	}
}

// SetFaultHook installs (or, with nil, removes) the device's fault injector.
func (d *Device) SetFaultHook(h FaultHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = h
}

// SetResilience points the device's retry loops at a resilience registry
// (nil restores the built-in defaults). Safe to call on a live device.
func (d *Device) SetResilience(r *policy.Resilience) {
	d.res.Store(r)
}

// resilience returns the registry the retry loops consult (nil-safe).
func (d *Device) resilience() *policy.Resilience {
	return d.res.Load()
}

// Spec returns the device's parameters.
func (d *Device) Spec() Spec {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec
}

// State returns the device's availability.
func (d *Device) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Serving reports whether the device still accepts IO: healthy or suspect.
// Suspect devices keep serving (at degraded confidence) until the health
// monitor declares them failed.
func (d *Device) Serving() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state != StateFailed
}

// Suspect reports whether the health monitor currently distrusts the device
// (fail-slow or error-storming, but still serving). Hedged reads key off
// this: a read whose primary replica sits on a suspect device races a hedge.
func (d *Device) Suspect() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == StateSuspect
}

// Generation returns the device slot's replacement count.
func (d *Device) Generation() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.generation
}

// Stats returns a copy of the device's IO counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Used returns the number of bytes currently stored.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the remaining capacity in bytes.
func (d *Device) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.CapacityBytes - d.used
}

// WearCycles reports consumed program/erase cycles. Under LayoutLog it is
// exact erase-equivalent wear: segments erased times segment size over
// capacity — the only operation that costs an erase cycle is a segment
// erase, so a freshly filled device has zero wear until GC reclaims
// something. Under LayoutInPlace it keeps the seed estimate (total bytes
// written over capacity: every in-place overwrite is modelled as an
// erase+program of its own footprint). The paper motivates Reo with flash's
// 1,000–5,000 P/E cycle budget; this counter lets experiments report wear
// per policy.
func (d *Device) WearCycles() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wearCyclesLocked()
}

func (d *Device) wearCyclesLocked() float64 {
	if d.spec.CapacityBytes == 0 {
		return 0
	}
	if d.layout == LayoutLog {
		return float64(d.stats.SegmentErases) * float64(d.log.cfg.SegmentBytes) /
			float64(d.spec.CapacityBytes)
	}
	return float64(d.stats.BytesWritten) / float64(d.spec.CapacityBytes)
}

// scaleCost multiplies a virtual-time cost by a fail-slow factor.
func scaleCost(cost time.Duration, scale float64) time.Duration {
	if scale <= 1 {
		return cost
	}
	return time.Duration(float64(cost) * scale)
}

// Write stores a copy of data at addr and returns the virtual-time cost.
// Overwriting an existing chunk releases its old space first. Transient
// injected faults are retried with bounded backoff.
func (d *Device) Write(addr ChunkAddr, data []byte) (time.Duration, error) {
	return d.write(nil, addr, data)
}

func (d *Device) write(rc *reqctx.Ctx, addr ChunkAddr, data []byte) (time.Duration, error) {
	res := d.resilience()
	class := rc.OpClass()
	retry := res.Rule(class).Retry
	var total time.Duration
	for attempt := 0; ; attempt++ {
		cost, err := d.writeOnce(addr, data)
		total += cost
		res.ObserveAttempt(class, attempt, attemptOutcome(err), cost)
		if err == nil || !IsTransient(err) {
			return total, err
		}
		if retry.MaxAttempts > 0 && attempt+1 >= retry.MaxAttempts {
			d.noteRetriesExhausted()
			return total, err
		}
		if !res.AllowRetry(class) {
			res.ObserveAttempt(class, attempt+1, policy.OutcomeDenied, 0)
			d.noteRetriesExhausted()
			return total, err
		}
		if serr := d.backoff(rc, retry, attempt, addr); serr != nil {
			res.ObserveAttempt(class, attempt+1, policy.OutcomeCancelled, 0)
			return total, serr
		}
	}
}

func (d *Device) writeOnce(addr ChunkAddr, data []byte) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateFailed {
		return 0, ErrDeviceFailed
	}
	var dec FaultDecision
	if d.hook != nil {
		dec = d.hook.Decide(FaultWrite, addr)
	}
	if dec.FailStop {
		d.failLocked("injected fail-stop")
		return 0, ErrDeviceFailed
	}
	if dec.Err != nil {
		d.recordOutcomeLocked(false, dec.LatencyScale, &d.health.transientErrors)
		return scaleCost(d.spec.WriteLatency, dec.LatencyScale), dec.Err
	}
	old, exists := d.data[addr]
	n := int64(len(data))
	newUsed := d.used + n
	if exists {
		newUsed -= int64(len(old))
	}
	if d.layout == LayoutLog {
		// Host writes see capacity minus the overprovisioning reserve; the
		// reserve keeps GC able to relocate a victim even when logically
		// full. Logical fullness (live bytes) surfaces as ErrDeviceFull so
		// the store's evict-and-retry loop behaves exactly as in-place.
		if newUsed > d.hostCapLocked() {
			return 0, ErrDeviceFull
		}
		// Physical fullness (live + dead bytes) is reclaimed inline when
		// the background collector hasn't kept up. Inline GC charges no
		// virtual time, so replay costs stay independent of collector
		// scheduling.
		for d.used+d.log.garbage+n > d.spec.CapacityBytes {
			if _, ok := d.collectOnceLocked(true); !ok {
				break
			}
		}
		if d.used+d.log.garbage+n > d.spec.CapacityBytes {
			return 0, ErrDeviceFull
		}
		if exists {
			d.tombstoneLocked(addr)
		}
		d.appendChunkLocked(addr, n)
	} else if newUsed > d.spec.CapacityBytes {
		return 0, ErrDeviceFull
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.data[addr] = buf
	d.crcs[addr] = crc32.Checksum(buf, castagnoli)
	d.used = newUsed
	d.stats.WriteOps++
	d.stats.BytesWritten += n
	cost := d.spec.WriteLatency + simclock.TransferTime(n, d.spec.WriteBandwidth)
	d.recordOutcomeLocked(true, dec.LatencyScale, nil)
	return scaleCost(cost, dec.LatencyScale), nil
}

// Read returns a copy of the chunk at addr and the virtual-time cost. The
// stored CRC32C is verified; a mismatch (or injected latent sector error)
// drops the chunk and reports ErrChunkCorrupt, so degraded-read machinery
// treats it exactly like a missing chunk. Transient faults are retried.
func (d *Device) Read(addr ChunkAddr) ([]byte, time.Duration, error) {
	data, _, _, cost, err := d.read(nil, addr, nil)
	return data, cost, err
}

// read runs the bounded-retry loop around readOnce. When dst is non-nil the
// chunk is copied into it (zero-alloc path) and the returned slice is nil;
// n is the byte count copied out and stored is the full stored chunk length
// (the transfer the device charged and attributes to the request).
func (d *Device) read(rc *reqctx.Ctx, addr ChunkAddr, dst []byte) ([]byte, int, int64, time.Duration, error) {
	res := d.resilience()
	class := rc.OpClass()
	retry := res.Rule(class).Retry
	var total time.Duration
	for attempt := 0; ; attempt++ {
		out, n, stored, cost, err := d.readOnce(addr, dst)
		total += cost
		res.ObserveAttempt(class, attempt, attemptOutcome(err), cost)
		if err == nil || !IsTransient(err) {
			return out, n, stored, total, err
		}
		if retry.MaxAttempts > 0 && attempt+1 >= retry.MaxAttempts {
			d.noteRetriesExhausted()
			return out, n, stored, total, err
		}
		if !res.AllowRetry(class) {
			res.ObserveAttempt(class, attempt+1, policy.OutcomeDenied, 0)
			d.noteRetriesExhausted()
			return out, n, stored, total, err
		}
		if serr := d.backoff(rc, retry, attempt, addr); serr != nil {
			res.ObserveAttempt(class, attempt+1, policy.OutcomeCancelled, 0)
			return nil, 0, 0, total, serr
		}
	}
}

func (d *Device) readOnce(addr ChunkAddr, dst []byte) ([]byte, int, int64, time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateFailed {
		return nil, 0, 0, 0, ErrDeviceFailed
	}
	var dec FaultDecision
	if d.hook != nil {
		dec = d.hook.Decide(FaultRead, addr)
	}
	if dec.FailStop {
		d.failLocked("injected fail-stop")
		return nil, 0, 0, 0, ErrDeviceFailed
	}
	if dec.Err != nil {
		d.recordOutcomeLocked(false, dec.LatencyScale, &d.health.transientErrors)
		return nil, 0, 0, scaleCost(d.spec.ReadLatency, dec.LatencyScale), dec.Err
	}
	if dec.FlipByte > 0 {
		d.corruptLocked(addr, dec.FlipByte-1, false)
	}
	data, ok := d.data[addr]
	if !ok {
		return nil, 0, 0, 0, ErrChunkNotFound
	}
	if dec.DropChunk {
		d.dropChunkLocked(addr)
		d.recordOutcomeLocked(false, dec.LatencyScale, &d.health.latentErrors)
		return nil, 0, 0, scaleCost(d.spec.ReadLatency, dec.LatencyScale),
			fmt.Errorf("%w: latent sector error at addr %d", ErrChunkCorrupt, addr)
	}
	if crc32.Checksum(data, castagnoli) != d.crcs[addr] {
		// Integrity failure: discard the chunk so every later Has/Read sees
		// it as missing and the stripe layer reconstructs + repairs it.
		d.dropChunkLocked(addr)
		d.recordOutcomeLocked(false, dec.LatencyScale, &d.health.checksumErrors)
		return nil, 0, 0, scaleCost(d.spec.ReadLatency, dec.LatencyScale),
			fmt.Errorf("%w: checksum mismatch at addr %d", ErrChunkCorrupt, addr)
	}
	var out []byte
	n := len(data)
	if dst != nil {
		n = copy(dst, data)
	} else {
		out = make([]byte, len(data))
		copy(out, data)
	}
	d.stats.ReadOps++
	d.stats.BytesRead += int64(len(data))
	cost := d.spec.ReadLatency + simclock.TransferTime(int64(len(data)), d.spec.ReadBandwidth)
	d.recordOutcomeLocked(true, dec.LatencyScale, nil)
	return out, n, int64(len(data)), scaleCost(cost, dec.LatencyScale), nil
}

// backoff sleeps before the next retry attempt: the registry rule's
// exponential schedule with deterministic jitter derived from (addr,
// attempt), honouring the request's cancellation/deadline. Sleeps are
// wall-clock only and never charged to the virtual clock. A cancellation
// that lands mid-sleep interrupts the sleep immediately — the request does
// not finish serving out a delay it no longer needs.
func (d *Device) backoff(rc *reqctx.Ctx, retry policy.RetryRule, attempt int, addr ChunkAddr) error {
	if err := rc.Err(); err != nil {
		return err
	}
	h := mix64(uint64(addr)*0x9E3779B97F4A7C15 + uint64(attempt) + 1)
	delay := retry.BackoffDelay(attempt, h)
	if delay > 0 {
		if done := rc.Done(); done != nil {
			t := time.NewTimer(delay)
			select {
			case <-done:
				t.Stop()
			case <-t.C:
			}
		} else {
			time.Sleep(delay)
		}
	}
	d.mu.Lock()
	d.health.retries++
	d.mu.Unlock()
	return rc.Err()
}

// attemptOutcome classifies an attempt error for the per-attempt timeline.
func attemptOutcome(err error) policy.AttemptOutcome {
	switch {
	case err == nil:
		return policy.OutcomeOK
	case IsTransient(err):
		return policy.OutcomeTransient
	default:
		return policy.OutcomeError
	}
}

func (d *Device) noteRetriesExhausted() {
	d.mu.Lock()
	d.health.retriesExhausted++
	d.mu.Unlock()
}

// mix64 is a splitmix64 finaliser: a cheap, high-quality bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// WriteCtx is Write with a cancellation checkpoint: device IO is
// interruptible at chunk granularity, so the request context is consulted
// once before the chunk lands and the write is attributed to the request.
// A cancelled request never leaves a partial chunk.
func (d *Device) WriteCtx(rc *reqctx.Ctx, addr ChunkAddr, data []byte) (time.Duration, error) {
	if err := rc.Err(); err != nil {
		return 0, err
	}
	cost, err := d.write(rc, addr, data)
	if err == nil {
		rc.CountDeviceWrite(int64(len(data)))
	}
	return cost, err
}

// ReadCtx is Read with a cancellation checkpoint and per-request
// attribution.
func (d *Device) ReadCtx(rc *reqctx.Ctx, addr ChunkAddr) ([]byte, time.Duration, error) {
	if err := rc.Err(); err != nil {
		return nil, 0, err
	}
	data, _, stored, cost, err := d.read(rc, addr, nil)
	if err == nil {
		rc.CountDeviceRead(stored)
	}
	return data, cost, err
}

// ReadInto copies the chunk at addr into dst without allocating, returning
// the bytes copied (min of dst length and the stored chunk length) and the
// virtual-time cost. Cost and IO counters are charged on the full stored
// chunk — the device always transfers whole chunks; dst only bounds how much
// of it the caller keeps — so ReadInto and Read are indistinguishable to the
// clock. The request context is checked before the IO starts.
func (d *Device) ReadInto(rc *reqctx.Ctx, addr ChunkAddr, dst []byte) (int, time.Duration, error) {
	if err := rc.Err(); err != nil {
		return 0, 0, err
	}
	_, n, stored, cost, err := d.read(rc, addr, dst)
	if err == nil {
		rc.CountDeviceRead(stored)
	}
	return n, cost, err
}

// Has reports whether the chunk is present and readable, without charging
// cost or touching IO counters. Failed devices hold nothing.
func (d *Device) Has(addr ChunkAddr) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateFailed {
		return false
	}
	_, ok := d.data[addr]
	return ok
}

// Delete removes the chunk at addr, freeing its space. Deleting a missing
// chunk is a no-op; deletes on failed devices fail.
func (d *Device) Delete(addr ChunkAddr) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateFailed {
		return ErrDeviceFailed
	}
	d.dropChunkLocked(addr)
	return nil
}

func (d *Device) dropChunkLocked(addr ChunkAddr) {
	if old, ok := d.data[addr]; ok {
		if d.layout == LayoutLog {
			// The chunk's bytes stay physically occupied (dead) in their
			// segment until GC erases it.
			d.tombstoneLocked(addr)
		}
		d.used -= int64(len(old))
		delete(d.data, addr)
		delete(d.crcs, addr)
	}
}

// corruptLocked flips one bit of the stored chunk at the given byte offset.
// When silent is true the stored CRC is recomputed over the corrupted bytes,
// modelling corruption the per-chunk checksum cannot see (stale sector
// returned with a matching checksum): only scrub's cross-chunk redundancy
// check finds it. When silent is false the CRC is left stale, so the next
// foreground read detects and drops the chunk.
func (d *Device) corruptLocked(addr ChunkAddr, offset int, silent bool) bool {
	data, ok := d.data[addr]
	if !ok || len(data) == 0 {
		return false
	}
	if silent {
		if offset < 0 || offset >= len(data) {
			return false
		}
	} else {
		offset = ((offset % len(data)) + len(data)) % len(data)
	}
	data[offset] ^= 0x01
	if silent {
		d.crcs[addr] = crc32.Checksum(data, castagnoli)
	}
	return true
}

// InjectCorruption is the single corruption path shared by tests and the
// fault injector: it flips one bit at offset (see corruptLocked for the
// silent/detectable distinction) and reports whether anything changed.
func (d *Device) InjectCorruption(addr ChunkAddr, offset int, silent bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateFailed {
		return false
	}
	return d.corruptLocked(addr, offset, silent)
}

// Corrupt flips one bit of the stored chunk at the given byte offset,
// emulating the silent partial data loss flash wear causes (the paper's §I:
// "from partial data loss to a complete device failure"). The stored
// checksum is recomputed, so the read path cannot see the damage — only
// scrub's cross-chunk redundancy check can. It reports whether anything was
// corrupted (the chunk exists and the offset is in range). Corrupt is the
// silent=true case of InjectCorruption, the corruption path the fault
// injector shares.
func (d *Device) Corrupt(addr ChunkAddr, offset int) bool {
	return d.InjectCorruption(addr, offset, true)
}

// Fail takes the device offline and discards its contents, emulating an
// unrecoverable device failure. Failing an already-failed device is a no-op.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failLocked("operator fail")
}

func (d *Device) failLocked(reason string) {
	if d.state == StateFailed {
		return
	}
	d.state = StateFailed
	d.data = make(map[ChunkAddr][]byte)
	d.crcs = make(map[ChunkAddr]uint32)
	d.used = 0
	if d.layout == LayoutLog {
		d.log.reset()
	}
	if d.health.failReason == "" {
		d.health.failReason = reason
	}
}

// Replace installs a blank spare in this slot: the device becomes healthy,
// empty, with fresh counters, fresh health history, and an incremented
// generation.
func (d *Device) Replace() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = StateHealthy
	d.data = make(map[ChunkAddr][]byte)
	d.crcs = make(map[ChunkAddr]uint32)
	d.used = 0
	d.stats = Stats{}
	if d.layout == LayoutLog {
		d.log.reset()
	}
	d.health = newHealthState()
	d.generation++
}

// Array is a fixed-width shelf of flash devices. The slot order is
// significant: the stripe manager maps chunk slots to device indices.
type Array struct {
	devices []*Device
}

// NewArray returns an array of n fresh devices sharing one spec.
func NewArray(n int, spec Spec) (*Array, error) {
	return NewArrayLayout(n, spec, LayoutInPlace, LogConfig{})
}

// NewArrayLayout returns an array of n fresh devices sharing one spec and
// one physical layout.
func NewArrayLayout(n int, spec Spec, layout Layout, cfg LogConfig) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flash: array size %d must be positive", n)
	}
	devices := make([]*Device, n)
	for i := range devices {
		devices[i] = NewDeviceLayout(spec, layout, cfg)
	}
	return &Array{devices: devices}, nil
}

// SetResilience points every slot's retry loops at the registry (nil
// restores defaults). Spares inserted later keep the slot's Device object,
// so the registry survives replacement.
func (a *Array) SetResilience(r *policy.Resilience) {
	for _, d := range a.devices {
		d.SetResilience(r)
	}
}

// N returns the number of device slots.
func (a *Array) N() int { return len(a.devices) }

// Device returns the device in slot i.
func (a *Array) Device(i int) *Device { return a.devices[i] }

// Alive returns the indices of serving (healthy or suspect) devices in slot
// order. Suspect devices still hold data and serve IO, so they remain
// placement targets until the health monitor fails them.
func (a *Array) Alive() []int {
	out := make([]int, 0, len(a.devices))
	for i, d := range a.devices {
		if d.Serving() {
			out = append(out, i)
		}
	}
	return out
}

// AliveCount returns the number of serving devices without allocating.
func (a *Array) AliveCount() int {
	n := 0
	for _, d := range a.devices {
		if d.Serving() {
			n++
		}
	}
	return n
}

// FailDevice takes slot i offline.
func (a *Array) FailDevice(i int) error {
	if i < 0 || i >= len(a.devices) {
		return fmt.Errorf("flash: device index %d out of range", i)
	}
	a.devices[i].Fail()
	return nil
}

// InsertSpare replaces slot i with a blank healthy device.
func (a *Array) InsertSpare(i int) error {
	if i < 0 || i >= len(a.devices) {
		return fmt.Errorf("flash: device index %d out of range", i)
	}
	a.devices[i].Replace()
	return nil
}

// TotalCapacity returns the sum of all slots' capacities, regardless of
// state (the raw shelf size).
func (a *Array) TotalCapacity() int64 {
	var total int64
	for _, d := range a.devices {
		total += d.Spec().CapacityBytes
	}
	return total
}

// TotalUsed returns bytes stored across serving devices.
func (a *Array) TotalUsed() int64 {
	var total int64
	for _, d := range a.devices {
		if d.Serving() {
			total += d.Used()
		}
	}
	return total
}
