package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/store"
	"github.com/reo-cache/reo/internal/transport"
)

func TestParseOID(t *testing.T) {
	tests := []struct {
		in      string
		want    osd.ObjectID
		wantErr bool
	}{
		{"0x10010", osd.ObjectID{PID: osd.FirstPID, OID: 0x10010}, false},
		{"65552", osd.ObjectID{PID: osd.FirstPID, OID: 65552}, false},
		{"0x20000:0x10010", osd.ObjectID{PID: 0x20000, OID: 0x10010}, false},
		{"1:2", osd.ObjectID{PID: 1, OID: 2}, false},
		{"zz", osd.ObjectID{}, true},
		{"0x1:zz", osd.ObjectID{}, true},
		{"zz:0x1", osd.ObjectID{}, true},
	}
	for _, tc := range tests {
		got, err := parseOID(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseOID(%q) err = %v", tc.in, err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseOID(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]osd.Class{
		"metadata": osd.ClassMetadata,
		"dirty":    osd.ClassDirty,
		"hot":      osd.ClassHotClean,
		"COLD":     osd.ClassColdClean,
	} {
		got, err := parseClass(in)
		if err != nil || got != want {
			t.Errorf("parseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseClass("lukewarm"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// liveServer spins up a real target for end-to-end CLI dispatch tests.
func liveServer(t *testing.T) string {
	t.Helper()
	st, err := store.New(store.Config{
		Devices: 5,
		DeviceSpec: flash.Spec{
			CapacityBytes:  4 << 20,
			ReadBandwidth:  500e6,
			WriteBandwidth: 400e6,
			ReadLatency:    50 * time.Microsecond,
			WriteLatency:   60 * time.Microsecond,
		},
		ChunkSize:        1024,
		Policy:           policy.Reo{ParityBudget: 0.4},
		RedundancyBudget: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(st, ln)
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

func TestCLIEndToEnd(t *testing.T) {
	addr := liveServer(t)
	runCmd := func(stdin string, args ...string) (string, error) {
		var out bytes.Buffer
		err := run(append([]string{"-addr", addr}, args...), strings.NewReader(stdin), &out)
		return out.String(), err
	}

	// put → get round trip.
	if out, err := runCmd("hello reo", "put", "0x10010", "-class", "hot"); err != nil || !strings.Contains(out, "put") {
		t.Fatalf("put: %q, %v", out, err)
	}
	out, err := runCmd("", "get", "0x10010")
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello reo" {
		t.Fatalf("get = %q", out)
	}

	// classify + query + status + stats.
	if out, err := runCmd("", "classify", "0x10010", "cold"); err != nil || !strings.Contains(out, "sense 0x0") {
		t.Fatalf("classify: %q, %v", out, err)
	}
	if out, err := runCmd("", "query", "0x10010"); err != nil || !strings.Contains(out, "sense 0x0") {
		t.Fatalf("query: %q, %v", out, err)
	}
	if out, err := runCmd("", "status", "0x10010"); err != nil || !strings.Contains(out, "alive") {
		t.Fatalf("status: %q, %v", out, err)
	}
	if out, err := runCmd("", "stats"); err != nil || !strings.Contains(out, "space efficiency") {
		t.Fatalf("stats: %q, %v", out, err)
	}
	if out, err := runCmd("", "segments"); err != nil || !strings.Contains(out, "in-place") {
		t.Fatalf("segments: %q, %v", out, err)
	}
	if out, err := runCmd("", "tune", "gc.trigger", "0.2"); err != nil || !strings.Contains(out, "tuned gc.trigger = 0.2") {
		t.Fatalf("tune: %q, %v", out, err)
	}

	// failure → spare → recover flow.
	if out, err := runCmd("", "fail", "0"); err != nil || !strings.Contains(out, "failed") {
		t.Fatalf("fail: %q, %v", out, err)
	}
	if out, err := runCmd("", "spare", "0"); err != nil || !strings.Contains(out, "queued") {
		t.Fatalf("spare: %q, %v", out, err)
	}
	if out, err := runCmd("", "recover"); err != nil || !strings.Contains(out, "recovery complete") {
		t.Fatalf("recover: %q, %v", out, err)
	}

	// patch then re-read.
	if out, err := runCmd("REO", "patch", "0x10010", "2"); err != nil || !strings.Contains(out, "patch") {
		t.Fatalf("patch: %q, %v", out, err)
	}
	out, err = runCmd("", "get", "0x10010")
	if err != nil {
		t.Fatal(err)
	}
	if out != "heREO reo" {
		t.Fatalf("get after patch = %q", out)
	}

	// delete.
	if out, err := runCmd("", "del", "0x10010"); err != nil || !strings.Contains(out, "deleted") {
		t.Fatalf("del: %q, %v", out, err)
	}
	if _, err := runCmd("", "get", "0x10010"); err == nil {
		t.Fatal("get after delete succeeded")
	}
}

func TestCLIUsageErrors(t *testing.T) {
	addr := liveServer(t)
	cases := [][]string{
		{},
		{"bogus"},
		{"put"},
		{"get"},
		{"get", "a", "b"},
		{"classify", "0x10010"},
		{"classify", "0x10010", "lukewarm"},
		{"fail", "x"},
		{"spare"},
		{"tune"},
		{"tune", "gc.trigger", "nope"},
		{"tune", "gc.unknown", "0.5"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(append([]string{"-addr", addr}, args...), strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCLIDialFailure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:1", "stats"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
