package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/osd"
	"github.com/reo-cache/reo/internal/policy"
)

func testSpec(capacity int64) flash.Spec {
	return flash.Spec{
		CapacityBytes:  capacity,
		ReadBandwidth:  500e6,
		WriteBandwidth: 400e6,
		ReadLatency:    50 * time.Microsecond,
		WriteLatency:   60 * time.Microsecond,
	}
}

func newStore(t testing.TB, pol policy.Policy, budget float64) *Store {
	t.Helper()
	s, err := New(Config{
		Devices:          5,
		DeviceSpec:       testSpec(4 << 20),
		ChunkSize:        1024,
		Policy:           pol,
		RedundancyBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func oid(n uint64) osd.ObjectID {
	return osd.ObjectID{PID: osd.FirstPID, OID: osd.FirstUserOID + n}
}

func randBytes(seed int64, n int) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Devices: 0, ChunkSize: 64, Policy: policy.Uniform{}},
		{Devices: 5, ChunkSize: 0, Policy: policy.Uniform{}},
		{Devices: 5, ChunkSize: 64},
		{Devices: 5, ChunkSize: 64, Policy: policy.Uniform{}, RedundancyBudget: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMetadataObjectsMaterialised(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.2}, 0.2)
	if got := s.ObjectCount(); got != 3 {
		t.Fatalf("ObjectCount = %d, want 3 metadata objects", got)
	}
	counts := s.CountByClass()
	if counts[osd.ClassMetadata] != 3 {
		t.Fatalf("metadata count = %d", counts[osd.ClassMetadata])
	}
	// Metadata is replicated: it survives 4 of 5 devices failing.
	for i := 0; i < 4; i++ {
		if err := s.FailDevice(i); err != nil {
			t.Fatal(err)
		}
	}
	id := osd.ObjectID{PID: osd.FirstPID, OID: osd.SuperBlockOID}
	if _, _, _, err := s.Get(id); err != nil {
		t.Fatalf("metadata unreadable with one survivor: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	data := randBytes(1, 50_000)
	cost, err := s.Put(oid(1), data, osd.ClassColdClean, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("put cost should be positive")
	}
	got, rcost, degraded, err := s.Get(oid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if degraded {
		t.Fatal("healthy read reported degraded")
	}
	if rcost <= 0 {
		t.Fatal("read cost should be positive")
	}
}

func TestGetNotFound(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	if _, _, _, err := s.Get(oid(404)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if s.Status(oid(404)) != StatusNotFound {
		t.Fatal("status should be not-found")
	}
}

func TestInvalidClassRejected(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	if _, err := s.Put(oid(1), []byte("x"), osd.Class(9), false); err == nil {
		t.Fatal("invalid class accepted on Put")
	}
	if _, err := s.Put(oid(1), []byte("x"), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	if err := s.SetClass(oid(1), osd.Class(9)); err == nil {
		t.Fatal("invalid class accepted on SetClass")
	}
	if _, err := s.Reclassify(oid(1), osd.Class(-1)); err == nil {
		t.Fatal("invalid class accepted on Reclassify")
	}
}

func TestOverwriteFreesOldSpace(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 0}, 0)
	if _, err := s.Put(oid(1), randBytes(2, 100_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	used := s.UsedBytes()
	if _, err := s.Put(oid(1), randBytes(3, 1_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes() >= used {
		t.Fatalf("overwrite did not free space: %d -> %d", used, s.UsedBytes())
	}
	got, _, _, err := s.Get(oid(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1_000 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestCacheFull(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 0}, 0)
	// 5 devices × 4MiB = 20MiB raw. A 30MiB object cannot fit.
	_, err := s.Put(oid(1), make([]byte, 30<<20), osd.ClassColdClean, false)
	if !errors.Is(err, ErrCacheFull) {
		t.Fatalf("err = %v, want ErrCacheFull", err)
	}
	if s.Has(oid(1)) {
		t.Fatal("failed put left the object behind")
	}
}

func TestRedundancyBudgetEnforced(t *testing.T) {
	// Budget 1% of 20MiB = ~210KB of redundancy. A hot-clean object of
	// 1MiB needs ~2/3 MiB of parity under 2-parity-of-5: rejected.
	s := newStore(t, policy.Reo{ParityBudget: 0.01}, 0.01)
	_, err := s.Put(oid(1), make([]byte, 1<<20), osd.ClassHotClean, false)
	if !errors.Is(err, ErrRedundancyFull) {
		t.Fatalf("err = %v, want ErrRedundancyFull", err)
	}
	// The same bytes as cold-clean (no redundancy) are fine.
	if _, err := s.Put(oid(1), make([]byte, 1<<20), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	// Dirty data bypasses the budget: always protected.
	if _, err := s.Put(oid(2), make([]byte, 100_000), osd.ClassDirty, true); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetNotEnforcedForUniformPolicies(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 2}, 0.01)
	if _, err := s.Put(oid(1), make([]byte, 1<<20), osd.ClassHotClean, false); err != nil {
		t.Fatalf("uniform policy should ignore budget: %v", err)
	}
}

func TestDegradedGet(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	data := randBytes(4, 20_000)
	if _, err := s.Put(oid(1), data, osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	got, _, degraded, err := s.Get(oid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded data mismatch")
	}
	if !degraded {
		t.Fatal("degraded read not flagged")
	}
	if s.Status(oid(1)) != StatusDegraded {
		t.Fatalf("status = %v", s.Status(oid(1)))
	}
}

func TestCorruptedGetFreesObject(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 0}, 0)
	if _, err := s.Put(oid(1), randBytes(5, 20_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if s.Status(oid(1)) != StatusLost {
		t.Fatalf("status = %v, want lost", s.Status(oid(1)))
	}
	if _, _, _, err := s.Get(oid(1)); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
	if s.Has(oid(1)) {
		t.Fatal("corrupted object not freed")
	}
	// Second get: plain not-found.
	if _, _, _, err := s.Get(oid(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAndMarkClean(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	if _, err := s.Put(oid(1), randBytes(6, 1_000), osd.ClassDirty, true); err != nil {
		t.Fatal(err)
	}
	info, err := s.Info(oid(1))
	if err != nil || !info.Dirty {
		t.Fatalf("info = %+v, %v", info, err)
	}
	if err := s.MarkClean(oid(1)); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Info(oid(1))
	if info.Dirty {
		t.Fatal("MarkClean did not clear dirty flag")
	}
	if err := s.Delete(oid(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(oid(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if err := s.MarkClean(oid(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("MarkClean on missing err = %v", err)
	}
}

func TestReclassifyReencodes(t *testing.T) {
	s := newStore(t, policy.Reo{ParityBudget: 0.4}, 0.4)
	data := randBytes(7, 30_000)
	if _, err := s.Put(oid(1), data, osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	before := s.OverheadBytes()
	cost, err := s.Reclassify(oid(1), osd.ClassHotClean)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("re-encode should cost IO")
	}
	if s.OverheadBytes() <= before {
		t.Fatal("hot-clean promotion should add parity overhead")
	}
	// Promoted object now survives two failures.
	_ = s.FailDevice(0)
	_ = s.FailDevice(1)
	got, _, _, err := s.Get(oid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after promotion + failures")
	}
}

func TestReclassifySameSchemeIsFree(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	if _, err := s.Put(oid(1), randBytes(8, 1_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	cost, err := s.Reclassify(oid(1), osd.ClassHotClean)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("uniform reclassify cost = %v, want 0 (same scheme)", cost)
	}
	info, _ := s.Info(oid(1))
	if info.Class != osd.ClassHotClean {
		t.Fatal("class label not updated")
	}
}

func TestSpaceEfficiencyUniform(t *testing.T) {
	// 1-parity on 5 devices: 4 data chunks per 5 chunks = 80% efficiency
	// for full stripes.
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	// Write data that exactly fills stripes: 4 × 1024 bytes each.
	for i := 0; i < 10; i++ {
		if _, err := s.Put(oid(uint64(i)), randBytes(int64(i), 4*1024), osd.ClassColdClean, false); err != nil {
			t.Fatal(err)
		}
	}
	// Metadata objects are replicated even under Uniform? No: Uniform maps
	// every class to 1-parity, including metadata, so efficiency is near
	// 0.8 overall.
	eff := s.SpaceEfficiency()
	if eff < 0.78 || eff > 0.82 {
		t.Fatalf("space efficiency = %v, want ~0.8", eff)
	}
}

func TestControlSetIDAndQuery(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 1}, 0)
	if _, err := s.Put(oid(1), randBytes(9, 2_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	sense, err := s.Control(osd.SetIDCommand{Object: oid(1), Class: osd.ClassHotClean}.Encode())
	if err != nil || sense != osd.SenseOK {
		t.Fatalf("SETID sense = %v, err = %v", sense, err)
	}
	info, _ := s.Info(oid(1))
	if info.Class != osd.ClassHotClean {
		t.Fatal("SETID did not apply class")
	}
	sense, err = s.Control(osd.QueryCommand{Object: oid(1), Op: osd.OpRead, Size: 2000}.Encode())
	if err != nil || sense != osd.SenseOK {
		t.Fatalf("QUERY sense = %v, err = %v", sense, err)
	}
	// Query for a missing object is unsuccessful.
	sense, err = s.Control(osd.QueryCommand{Object: oid(99), Op: osd.OpRead, Size: 1}.Encode())
	if err != nil || sense != osd.SenseFailure {
		t.Fatalf("missing QUERY sense = %v, err = %v", sense, err)
	}
	// Malformed message.
	if sense, err := s.Control([]byte("#JUNK#")); err == nil || sense != osd.SenseFailure {
		t.Fatalf("junk sense = %v, err = %v", sense, err)
	}
	// SETID for a missing object fails.
	if sense, _ := s.Control(osd.SetIDCommand{Object: oid(99), Class: osd.ClassDirty}.Encode()); sense != osd.SenseFailure {
		t.Fatalf("missing SETID sense = %v", sense)
	}
}

func TestControlQueryCorrupted(t *testing.T) {
	s := newStore(t, policy.Uniform{ParityChunks: 0}, 0)
	if _, err := s.Put(oid(1), randBytes(10, 5_000), osd.ClassColdClean, false); err != nil {
		t.Fatal(err)
	}
	_ = s.FailDevice(0)
	sense, err := s.Control(osd.QueryCommand{Object: oid(1), Op: osd.OpRead, Size: 1}.Encode())
	if err != nil || sense != osd.SenseCorrupted {
		t.Fatalf("sense = %v, err = %v, want 0x63", sense, err)
	}
}
