package stripe

// Hedged degraded reads: when the health monitor marks a device suspect
// (fail-slow), a read whose primary path would wait on that device races a
// second attempt — another replica, or a parity reconstruction that avoids
// every suspect device — fired after the policy's hedge delay. First success
// wins in virtual time; the loser is cancelled through the regular reqctx
// cancellation path.
//
// Determinism: the primary runs inline on the caller's goroutine and the
// hedge on a forked, independently cancellable child. Both attempts report
// virtual-time costs that are pure functions of the (deterministic) fault
// schedule, so the winner — min(primaryCost, delay+hedgeCost) — does not
// depend on wall-clock interleaving. When the primary's virtual cost is
// within the hedge delay the hedge provably cannot win and is cancelled
// immediately (the one genuinely asynchronous cancel, exercising the
// interruptible-backoff path); otherwise the hedge runs to its natural
// outcome before the winner is picked. Hedging is strictly opt-in: with the
// default registry (MaxHedges 0) every read takes readStripePrimary
// untouched.

import (
	"fmt"
	"time"

	"github.com/reo-cache/reo/internal/flash"
	"github.com/reo-cache/reo/internal/policy"
	"github.com/reo-cache/reo/internal/reqctx"
	"github.com/reo-cache/reo/internal/simclock"
)

// SetResilience points the manager's hedged-read gate at a resilience
// registry (nil disables hedging). Safe to call on a live manager.
func (m *Manager) SetResilience(r *policy.Resilience) { m.res.Store(r) }

// hedgePlan is an armed hedge: the gate found a suspect primary and a
// healthy alternative, resolved the policy delay, and claimed an in-flight
// hedge slot (which readStripeHedged must release via FinishHedge).
type hedgePlan struct {
	class policy.OpClass
	delay time.Duration
	// replicaDev is the healthy replica the hedge reads (replicate kind);
	// -1 selects the parity-reconstruction hedge.
	replicaDev int
	// avoid marks suspect device slots the reconstruction must not touch.
	avoid map[int]bool
}

// hedgePlan decides whether this stripe read should race a hedge. The fast
// path out — hedging unarmed — costs two atomic loads, so default-policy
// runs stay byte-identical. The caller holds the stripe's read lock.
func (m *Manager) hedgePlan(id ID, meta *stripeMeta) (hedgePlan, bool) {
	res := m.res.Load()
	if res == nil {
		return hedgePlan{}, false
	}
	const class = policy.OpReadDegraded
	delay, ok := res.HedgeDelay(class)
	if !ok {
		return hedgePlan{}, false
	}
	if meta.scheme.Kind == policy.KindReplicate {
		n := len(meta.replicaDevs)
		if n < 2 {
			return hedgePlan{}, false
		}
		start := int(uint64(id) % uint64(n))
		primary := meta.replicaDevs[start]
		if !m.array.Device(primary).Suspect() || !m.chunkPresent(id, primary) {
			return hedgePlan{}, false
		}
		// Hedge target: the next replica in rotation order that is serving,
		// trusted, and actually holds the chunk.
		for i := 1; i < n; i++ {
			dev := meta.replicaDevs[(start+i)%n]
			d := m.array.Device(dev)
			if d.Serving() && !d.Suspect() && m.chunkPresent(id, dev) {
				if !res.TryStartHedge(class) {
					return hedgePlan{}, false
				}
				return hedgePlan{class: class, delay: delay, replicaDev: dev}, true
			}
		}
		return hedgePlan{}, false
	}
	// Parity kind: the primary path reads every data chunk, so one suspect
	// data device drags the whole stripe. Hedge by reconstructing from the
	// trusted survivors, treating suspect devices as missing — feasible when
	// the suspects fit within the parity budget and enough trusted fragments
	// exist.
	k := len(meta.parityDevs)
	if k == 0 {
		return hedgePlan{}, false
	}
	suspects := 0
	avoid := make(map[int]bool, k)
	for _, dev := range meta.dataDevs {
		if !m.chunkPresent(id, dev) {
			// Already degraded: the primary path reconstructs anyway, and a
			// second reconstruction would race it for the same survivors.
			return hedgePlan{}, false
		}
		if m.array.Device(dev).Suspect() {
			suspects++
			avoid[dev] = true
		}
	}
	if suspects == 0 || suspects > k {
		return hedgePlan{}, false
	}
	trusted := len(meta.dataDevs) - suspects
	for _, dev := range meta.parityDevs {
		d := m.array.Device(dev)
		if d.Suspect() {
			avoid[dev] = true
			continue
		}
		if d.Serving() && m.chunkPresent(id, dev) {
			trusted++
		}
	}
	if trusted < len(meta.dataDevs) {
		return hedgePlan{}, false
	}
	if !res.TryStartHedge(class) {
		return hedgePlan{}, false
	}
	return hedgePlan{class: class, delay: delay, replicaDev: -1, avoid: avoid}, true
}

// readStripeHedged races the primary read against the plan's hedge. The
// caller holds the stripe's read lock; the hedge goroutine is always joined
// before returning, so the lock covers it too.
func (m *Manager) readStripeHedged(rc *reqctx.Ctx, id ID, meta *stripeMeta, dst []byte, plan hedgePlan) (time.Duration, error) {
	res := m.res.Load()
	// A hedged read is a degraded-confidence read: retag the request so both
	// attempts resolve the read.degraded retry rule and timeline label.
	prevClass := rc.OpClass()
	rc.WithOpClass(plan.class)
	defer rc.WithOpClass(prevClass)

	child, cancel := reqctx.Fork(rc)
	scratch := make([]byte, len(dst))
	type hedgeOutcome struct {
		cost time.Duration
		err  error
	}
	done := make(chan hedgeOutcome, 1)
	go func() {
		cost, err := m.readHedge(child, id, meta, scratch, plan)
		done <- hedgeOutcome{cost: cost, err: err}
	}()

	pCost, pErr := m.readStripePrimary(rc, id, meta, dst)

	if pErr == nil && pCost <= plan.delay {
		// The primary finished before the hedge would have fired: cancel the
		// hedge through the reqctx path and reap it. Not counted as fired.
		cancel()
		<-done
		rc.AbsorbStats(child)
		reqctx.Release(child)
		res.FinishHedge(plan.class, false, false)
		return pCost, nil
	}

	// The race is live. Let the hedge run to its natural outcome so the
	// virtual-time winner is deterministic, then reap it.
	ho := <-done
	cancel()
	rc.AbsorbStats(child)
	reqctx.Release(child)

	hCost := plan.delay + ho.cost
	won := ho.err == nil && (pErr != nil || hCost < pCost)
	res.FinishHedge(plan.class, true, won)
	if won {
		copy(dst, scratch)
		return hCost, nil
	}
	return pCost, pErr
}

// readHedge performs the hedge attempt into dst under the forked child
// context: a direct read of the chosen healthy replica, or a parity
// reconstruction that avoids every suspect device. Unlike the primary
// degraded path it never repairs on read — the data it rebuilds is not
// missing, just slow.
func (m *Manager) readHedge(rc *reqctx.Ctx, id ID, meta *stripeMeta, dst []byte, plan hedgePlan) (time.Duration, error) {
	if plan.replicaDev >= 0 {
		_, cost, err := m.array.Device(plan.replicaDev).ReadInto(rc, flash.ChunkAddr(id), dst)
		return cost, err
	}
	return m.reconstructAvoiding(rc, id, meta, dst, plan.avoid)
}

// reconstructAvoiding rebuilds the stripe's data from fragments on devices
// outside avoid, decoding the avoided chunks from parity.
func (m *Manager) reconstructAvoiding(rc *reqctx.Ctx, id ID, meta *stripeMeta, dst []byte, avoid map[int]bool) (time.Duration, error) {
	dataChunks := len(meta.dataDevs)
	k := len(meta.parityDevs)
	fragments := make([][]byte, dataChunks+k)
	costs := make([]time.Duration, dataChunks+k)
	read := func(idx, dev int) {
		if avoid[dev] || !m.chunkPresent(id, dev) {
			return
		}
		data, cost, err := m.array.Device(dev).ReadCtx(rc, flash.ChunkAddr(id))
		if err != nil {
			return
		}
		fragments[idx] = data
		costs[idx] = cost
	}
	_ = fanChunks(dataChunks+k, meta.chunkLen, func(i int) error {
		if i < dataChunks {
			read(i, meta.dataDevs[i])
		} else {
			read(i, meta.parityDevs[i-dataChunks])
		}
		return nil
	})
	if err := rc.Err(); err != nil {
		return 0, err
	}
	available := 0
	for _, f := range fragments {
		if f != nil {
			available++
		}
	}
	if available < dataChunks {
		return 0, fmt.Errorf("%w: stripe %d hedge (%d of %d fragments)", ErrUnrecoverable, id, available, dataChunks)
	}
	codec, err := m.codec(dataChunks, k)
	if err != nil {
		return 0, err
	}
	if err := codec.Reconstruct(fragments); err != nil {
		return 0, fmt.Errorf("stripe %d hedge: %w", id, err)
	}
	decodeCost := simclock.TransferTime(int64(dataChunks*meta.chunkLen), encodeBandwidth)
	written := 0
	for i := 0; i < dataChunks && written < len(dst); i++ {
		written += copy(dst[written:], fragments[i])
	}
	return simclock.Parallel(costs...) + decodeCost, nil
}
