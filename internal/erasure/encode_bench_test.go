package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// BenchmarkEncode is the headline coding benchmark tracked in EXPERIMENTS.md:
// a 4+2 codec over 64KB chunks, the configuration the stripe manager uses at
// the paper's scale. The fused word-wide kernel is compared against the seed
// scalar implementation there.
func BenchmarkEncode(b *testing.B) {
	c := mustCodec(b, 4, 2)
	data := randChunks(rand.New(rand.NewSource(11)), 4, 64<<10)
	parity := make([][]byte, 2)
	for p := range parity {
		parity[p] = make([]byte, 64<<10)
	}
	b.SetBytes(int64(4 * 64 << 10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeInto(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {3, 2}, {4, 2}, {8, 3}} {
		m, k := shape[0], shape[1]
		c := mustCodec(t, m, k)
		data := randChunks(rand.New(rand.NewSource(int64(m*10+k))), m, 4096+13)
		want, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]byte, k)
		for p := range got {
			// Deliberately dirty buffers: EncodeInto overwrites, so callers
			// need not pre-zero pooled scratch.
			got[p] = bytes.Repeat([]byte{0xaa}, 4096+13)
		}
		if err := c.EncodeInto(data, got); err != nil {
			t.Fatal(err)
		}
		for p := range got {
			if !bytes.Equal(got[p], want[p]) {
				t.Fatalf("m=%d k=%d parity %d mismatch", m, k, p)
			}
		}
	}
}

func TestEncodeIntoShapeErrors(t *testing.T) {
	c := mustCodec(t, 4, 2)
	data := randChunks(rand.New(rand.NewSource(12)), 4, 256)
	if err := c.EncodeInto(data[:3], make([][]byte, 2)); err == nil {
		t.Fatal("wrong data count accepted")
	}
	if err := c.EncodeInto(data, make([][]byte, 1)); err == nil {
		t.Fatal("wrong parity count accepted")
	}
	short := [][]byte{make([]byte, 256), make([]byte, 100)}
	if err := c.EncodeInto(data, short); err == nil {
		t.Fatal("short parity buffer accepted")
	}
}
